"""Per-inference latency, energy and power for a policy network on the accelerator.

This ties the systolic-array timing model, the energy model and the DVFS model
together into the numbers the system-level evaluation needs:

* processing energy per inference (and per training step) at any voltage,
* the "operating energy savings" factor relative to the 1 V nominal supply
  (Table II's ``Energy Savings`` column),
* the average processing power when the policy is executed at the UAV's
  control rate, which feeds the compute-power share of the flight-power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hardware.dvfs import DEFAULT_VOLTAGE_SCALING, VoltageScaling
from repro.hardware.energy import EnergyModel
from repro.hardware.systolic import SystolicArrayConfig, SystolicArrayModel
from repro.nn.network import Sequential


@dataclass(frozen=True)
class InferenceCost:
    """Latency and energy of one forward pass at one operating point."""

    volts: float
    normalized_voltage: float
    frequency_mhz: float
    cycles: int
    latency_ms: float
    energy_joules: float
    breakdown_joules: Dict[str, float]

    @property
    def energy_millijoules(self) -> float:
        return self.energy_joules * 1e3


class AcceleratorModel:
    """End-to-end accelerator cost model for a fixed policy network."""

    #: A backward pass through a feed-forward network costs roughly twice the
    #: forward pass (gradient wrt activations and wrt weights); one training
    #: step therefore costs about 3x one inference, for both Q and target nets.
    TRAINING_STEP_INFERENCE_EQUIVALENTS = 4.0

    def __init__(
        self,
        network: Sequential,
        input_shape: Tuple[int, ...],
        array: SystolicArrayConfig = SystolicArrayConfig(),
        energy: EnergyModel = EnergyModel(),
        scaling: Optional[VoltageScaling] = None,
        control_rate_hz: float = 30.0,
    ) -> None:
        if control_rate_hz <= 0:
            raise ConfigurationError(f"control_rate_hz must be positive, got {control_rate_hz}")
        self.network = network
        self.input_shape = tuple(int(dim) for dim in input_shape)
        self.array_model = SystolicArrayModel(array)
        self.energy_model = energy
        self.scaling = scaling if scaling is not None else energy.scaling
        self.control_rate_hz = float(control_rate_hz)
        self._layer_costs = self.array_model.network_costs(network, self.input_shape)
        self._total_cycles = sum(cost.cycles for cost in self._layer_costs)

    # ------------------------------------------------------------------ raw counts
    @property
    def total_cycles(self) -> int:
        return self._total_cycles

    @property
    def total_macs(self) -> int:
        return sum(cost.macs for cost in self._layer_costs)

    # ------------------------------------------------------------------ per-inference cost
    def inference_cost(self, normalized_voltage: float) -> InferenceCost:
        """Latency and energy of one policy inference at ``V/Vmin``."""
        volts = self.scaling.to_volts(normalized_voltage)
        frequency_mhz = self.scaling.frequency_mhz(volts)
        latency_s = self._total_cycles / (frequency_mhz * 1e6)
        breakdown = {"compute": 0.0, "sram": 0.0, "dram": 0.0}
        for cost in self._layer_costs:
            for key, value in self.energy_model.breakdown_joules(cost, volts).items():
                breakdown[key] += value
        dynamic = sum(breakdown.values())
        leakage = self.energy_model.leakage_energy_joules(latency_s, volts)
        breakdown["leakage"] = leakage
        return InferenceCost(
            volts=volts,
            normalized_voltage=normalized_voltage,
            frequency_mhz=frequency_mhz,
            cycles=self._total_cycles,
            latency_ms=latency_s * 1e3,
            energy_joules=dynamic + leakage,
            breakdown_joules=breakdown,
        )

    def inference_energy_joules(self, normalized_voltage: float) -> float:
        return self.inference_cost(normalized_voltage).energy_joules

    def training_step_energy_joules(self, normalized_voltage: float) -> float:
        """Energy of one on-device DQN training step (forward + backward, Q and target nets)."""
        return (
            self.inference_energy_joules(normalized_voltage)
            * self.TRAINING_STEP_INFERENCE_EQUIVALENTS
        )

    # ------------------------------------------------------------------ derived metrics
    def energy_savings(self, normalized_voltage: float) -> float:
        """Operating-energy saving factor vs nominal 1 V (the paper's "2.77x ... 4.93x")."""
        volts = self.scaling.to_volts(normalized_voltage)
        return self.scaling.energy_savings(volts)

    def processing_power_w(self, normalized_voltage: float) -> float:
        """Average processing power when running the policy at the control rate."""
        return self.inference_energy_joules(normalized_voltage) * self.control_rate_hz

    def sweep(self, normalized_voltages) -> list[InferenceCost]:
        """Evaluate the cost model across a voltage sweep."""
        return [self.inference_cost(float(v)) for v in normalized_voltages]
