"""Sequential network container with backpropagation and state management.

:class:`Sequential` is the only container the reproduction needs: every policy
in the paper (C3F2, C5F4 and the MLP variants used for fast tests) is a simple
feed-forward stack.  Besides forward/backward it provides the operations the
BERRY training loop relies on:

* ``state_dict`` / ``load_state_dict`` for target-network synchronisation,
* ``clone`` to create the perturbed copy used for the error-injected pass,
* ``parameters`` exposing named :class:`~repro.nn.layers.Parameter` objects so
  quantization and fault injection can operate per layer.

The container is backend-aware: layers hold their tensors on whichever
:class:`~repro.nn.backend.ArrayBackend` they were built with (all layers must
share one), while ``forward``/``backward``/``state_dict``/``gradients`` accept
and return numpy arrays at the API boundary so every consumer (trainers,
quantization, fault injection, evaluation) stays backend-agnostic.  For the
numpy backend those boundary conversions are identity operations.
"""

from __future__ import annotations

import copy
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import Layer, Parameter


class Sequential:
    """An ordered stack of layers applied one after another."""

    def __init__(self, layers: Sequence[Layer], input_shape: Optional[Tuple[int, ...]] = None) -> None:
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)
        backends = {layer.backend for layer in self.layers}
        if len(backends) > 1:
            names = sorted(backend.name for backend in backends)
            raise ConfigurationError(f"all layers must share one backend, got {names}")
        self.backend = next(iter(backends))
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self._rename_duplicate_layers()

    def _rename_duplicate_layers(self) -> None:
        """Give each parameterised layer a unique name so state dicts are unambiguous."""
        counts: Dict[str, int] = {}
        for layer in self.layers:
            if not layer.parameters():
                continue
            base = layer.name
            index = counts.get(base, 0)
            counts[base] = index + 1
            if index > 0:
                layer.name = f"{base}_{index}"
                for parameter in layer.parameters():
                    suffix = parameter.name.rsplit(".", 1)[-1]
                    parameter.name = f"{layer.name}.{suffix}"

    # ------------------------------------------------------------------ forward/backward
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        outputs = self.backend.asarray(inputs, "float64")
        for layer in self.layers:
            outputs = layer.forward(outputs)
        return self.backend.to_numpy(outputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.backend.asarray(grad_output, "float64")
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return self.backend.to_numpy(grad)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------------ parameters
    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def named_parameters(self) -> Dict[str, Parameter]:
        named: Dict[str, Parameter] = {}
        for parameter in self.parameters():
            if parameter.name in named:
                raise ConfigurationError(f"duplicate parameter name {parameter.name!r}")
            named[parameter.name] = parameter
        return named

    def num_parameters(self) -> int:
        return sum(parameter.size for parameter in self.parameters())

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def gradients(self) -> Dict[str, np.ndarray]:
        """Snapshot of all parameter gradients (numpy copies)."""
        backend = self.backend
        return {
            parameter.name: backend.to_numpy(parameter.grad, copy=True)
            for parameter in self.parameters()
        }

    def add_gradients(self, gradients: Dict[str, np.ndarray], scale: float = 1.0) -> None:
        """Accumulate externally computed gradients into this network's parameters."""
        backend = self.backend
        named = self.named_parameters()
        for name, grad in gradients.items():
            if name not in named:
                raise KeyError(f"unknown parameter {name!r} in gradient dictionary")
            parameter = named[name]
            if tuple(grad.shape) != parameter.shape:
                raise ShapeError(
                    f"gradient for {name!r} has shape {tuple(grad.shape)}, expected {parameter.shape}"
                )
            backend.add(
                parameter.grad,
                backend.multiply(backend.asarray(grad, "float64"), scale),
                out=parameter.grad,
            )

    # ------------------------------------------------------------------ state management
    def state_dict(self) -> Dict[str, np.ndarray]:
        backend = self.backend
        return {
            parameter.name: backend.to_numpy(parameter.data, copy=True)
            for parameter in self.parameters()
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        named = self.named_parameters()
        missing = set(named) - set(state)
        unexpected = set(state) - set(named)
        if missing or unexpected:
            raise ConfigurationError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        backend = self.backend
        for name, parameter in named.items():
            values = np.asarray(state[name], dtype=np.float64)
            if values.shape != parameter.shape:
                raise ShapeError(
                    f"state for {name!r} has shape {values.shape}, expected {parameter.shape}"
                )
            backend.copyto_(parameter.data, backend.asarray(values, "float64"))

    def copy_from(self, other: "Sequential") -> None:
        """Copy parameter values from another network with the same architecture."""
        self.load_state_dict(other.state_dict())

    def clone(self) -> "Sequential":
        """Deep copy of the network (architecture and parameter values).

        Backends are stateless singletons whose ``__deepcopy__`` returns the
        same object, so the clone shares the backend but owns its arrays.
        """
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ introspection
    def layer_shapes(self, input_shape: Optional[Tuple[int, ...]] = None) -> List[Tuple[str, Tuple[int, ...]]]:
        """Per-layer output shapes for a single sample, used by the accelerator model."""
        shape = tuple(input_shape) if input_shape is not None else self.input_shape
        if shape is None:
            raise ConfigurationError("input_shape must be provided (not set at construction)")
        shapes: List[Tuple[str, Tuple[int, ...]]] = []
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append((layer.name, tuple(shape)))
        return shapes

    def output_dim(self, input_shape: Optional[Tuple[int, ...]] = None) -> int:
        """Number of scalar outputs per sample (the Q-value head width)."""
        shapes = self.layer_shapes(input_shape)
        final = shapes[-1][1]
        return int(math.prod(final))

    def summary(self) -> str:
        """Human-readable architecture summary."""
        lines = [f"Sequential ({self.num_parameters()} parameters)"]
        for index, layer in enumerate(self.layers):
            lines.append(f"  [{index}] {layer!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Sequential(num_layers={len(self.layers)}, num_parameters={self.num_parameters()})"
