"""Weight initialization schemes.

Kaiming (He) initialization is the default for ReLU networks; Xavier (Glorot)
is provided for completeness and for the linear output head of Q-networks,
where a smaller initial scale keeps early Q-value estimates near zero.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear ``(out, in)`` or conv ``(out, in, kh, kw)`` weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    raise ConfigurationError(f"unsupported weight shape for initialization: {shape}")


def kaiming_uniform(shape: Tuple[int, ...], rng: SeedLike = None, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialization, appropriate for ReLU activations."""
    generator = as_generator(rng)
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return generator.uniform(-bound, bound, size=shape).astype(np.float64)


def xavier_uniform(shape: Tuple[int, ...], rng: SeedLike = None, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialization."""
    generator = as_generator(rng)
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-bound, bound, size=shape).astype(np.float64)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def uniform_bias(shape: Tuple[int, ...], fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """PyTorch-style bias initialization: uniform in ``±1/sqrt(fan_in)``."""
    if fan_in <= 0:
        raise ConfigurationError(f"fan_in must be positive, got {fan_in}")
    generator = as_generator(rng)
    bound = 1.0 / math.sqrt(fan_in)
    return generator.uniform(-bound, bound, size=shape).astype(np.float64)
