"""Minimal neural-network library (numpy forward/backward) used for DQN policies.

The paper trains convolutional Q-networks (C3F2, C5F4) with PyTorch; this
package provides the equivalent building blocks implemented directly on
numpy arrays so the whole reproduction runs without external ML frameworks:

* :mod:`repro.nn.layers` — Linear, Conv2d, ReLU/LeakyReLU, Flatten, MaxPool2d
* :mod:`repro.nn.network` — :class:`Sequential` container with backprop
* :mod:`repro.nn.loss` — MSE and Huber losses
* :mod:`repro.nn.optim` — SGD, Momentum, RMSProp, Adam
* :mod:`repro.nn.policies` — the paper's C3F2 / C5F4 policy architectures
* :mod:`repro.nn.backend` — pluggable compute backends (numpy default,
  optional lazily-imported torch) the whole stack routes its arithmetic
  through
"""

from repro.nn.backend import (
    ArrayBackend,
    backend_available,
    default_backend_name,
    get_backend,
    registered_backends,
    set_default_backend,
)
from repro.nn.layers import (
    Conv2d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
)
from repro.nn.network import Sequential
from repro.nn.loss import HuberLoss, MSELoss
from repro.nn.optim import SGD, Adam, RMSProp
from repro.nn.policies import PolicySpec, build_policy, c3f2, c5f4, mlp

__all__ = [
    "ArrayBackend",
    "backend_available",
    "default_backend_name",
    "get_backend",
    "registered_backends",
    "set_default_backend",
    "Parameter",
    "Linear",
    "Conv2d",
    "ReLU",
    "LeakyReLU",
    "Flatten",
    "MaxPool2d",
    "Sequential",
    "MSELoss",
    "HuberLoss",
    "SGD",
    "RMSProp",
    "Adam",
    "PolicySpec",
    "build_policy",
    "c3f2",
    "c5f4",
    "mlp",
]
