"""Loss functions for Q-learning.

The paper's Algorithm 1 uses the squared temporal-difference error; Huber loss
is also provided because it is the standard DQN choice and makes the small
fast-profile runs noticeably more stable.  Each loss returns ``(value, grad)``
where ``grad`` is the gradient with respect to the predictions, ready to be
fed to ``Sequential.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError


def _validate(predictions: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ShapeError(
            f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
        )
    if predictions.size == 0:
        raise ShapeError("loss computed over an empty batch")
    return predictions, targets


class MSELoss:
    """Mean squared error: ``mean((pred - target)^2)``."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        predictions, targets = _validate(predictions, targets)
        diff = predictions - targets
        value = float(np.mean(diff**2))
        grad = (2.0 / diff.size) * diff
        return value, grad


class HuberLoss:
    """Huber (smooth L1) loss with configurable transition point ``delta``."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        predictions, targets = _validate(predictions, targets)
        diff = predictions - targets
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        values = np.where(
            quadratic,
            0.5 * diff**2,
            self.delta * (abs_diff - 0.5 * self.delta),
        )
        grads = np.where(quadratic, diff, self.delta * np.sign(diff))
        return float(np.mean(values)), grads / diff.size
