"""Loss functions for Q-learning.

The paper's Algorithm 1 uses the squared temporal-difference error; Huber loss
is also provided because it is the standard DQN choice and makes the small
fast-profile runs noticeably more stable.  Each loss returns ``(value, grad)``
where ``grad`` is the gradient with respect to the predictions as a numpy
array, ready to be fed to ``Sequential.backward``.  The arithmetic runs on a
pluggable :class:`~repro.nn.backend.ArrayBackend`; the numpy backend is
bitwise identical to the direct-numpy implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.backend import ArrayBackend
from repro.nn.layers import BackendLike, _resolve_backend


def _validate(backend: ArrayBackend, predictions, targets):
    predictions = backend.asarray(predictions, "float64")
    targets = backend.asarray(targets, "float64")
    if tuple(predictions.shape) != tuple(targets.shape):
        raise ShapeError(
            f"predictions shape {tuple(predictions.shape)} does not match "
            f"targets shape {tuple(targets.shape)}"
        )
    if backend.numel(predictions) == 0:
        raise ShapeError("loss computed over an empty batch")
    return predictions, targets


class MSELoss:
    """Mean squared error: ``mean((pred - target)^2)``."""

    def __init__(self, backend: BackendLike = None) -> None:
        self.backend = _resolve_backend(backend)

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        be = self.backend
        predictions, targets = _validate(be, predictions, targets)
        diff = be.subtract(predictions, targets)
        value = float(be.mean(be.multiply(diff, diff)))
        grad = be.multiply(diff, 2.0 / be.numel(diff))
        return value, be.to_numpy(grad)


class HuberLoss:
    """Huber (smooth L1) loss with configurable transition point ``delta``."""

    def __init__(self, delta: float = 1.0, backend: BackendLike = None) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.backend = _resolve_backend(backend)

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        be = self.backend
        predictions, targets = _validate(be, predictions, targets)
        diff = be.subtract(predictions, targets)
        abs_diff = be.abs(diff)
        quadratic = abs_diff <= self.delta
        values = be.where(
            quadratic,
            be.multiply(be.multiply(diff, diff), 0.5),
            be.multiply(be.subtract(abs_diff, 0.5 * self.delta), self.delta),
        )
        grads = be.where(quadratic, diff, be.multiply(be.sign(diff), self.delta))
        return float(be.mean(values)), be.to_numpy(be.divide(grads, be.numel(diff)))
