"""Policy network architectures used in the paper.

The paper evaluates two convolutional Q-network architectures:

* **C3F2** — 3 convolutional + 2 fully-connected layers, ~1.1 MB of 8-bit
  parameters, the default autonomy policy (from Wan et al., DAC'21).
* **C5F4** — 5 convolutional + 4 fully-connected layers with ~1.98x the
  parameters of C3F2, used in the Fig. 7 model-architecture study.

Both are expressed here as :class:`PolicySpec` descriptions that scale to any
observation shape; an ``mlp`` spec is provided for the vector observations
used by the fast test/benchmark profile (training a full convolutional policy
inside a unit test would be needlessly slow without changing any conclusion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.nn.layers import BackendLike, Conv2d, Flatten, Linear, ReLU, _resolve_backend
from repro.nn.network import Sequential
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ConvSpec:
    """One convolutional layer: output channels, kernel size and stride."""

    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int = 0


@dataclass(frozen=True)
class PolicySpec:
    """Architecture description decoupled from the observation shape.

    ``conv_layers`` may be empty, in which case the policy is a plain MLP on a
    flattened observation.  ``hidden_units`` lists the widths of the fully
    connected layers before the Q-value head.
    """

    name: str
    conv_layers: Tuple[ConvSpec, ...] = ()
    hidden_units: Tuple[int, ...] = (64, 64)

    @property
    def num_conv(self) -> int:
        return len(self.conv_layers)

    @property
    def num_fc(self) -> int:
        return len(self.hidden_units) + 1  # hidden layers plus the Q-value head

    def describe(self) -> str:
        conv = ", ".join(
            f"conv{i+1}({c.out_channels}ch,k{c.kernel_size},s{c.stride})"
            for i, c in enumerate(self.conv_layers)
        )
        fc = ", ".join(f"fc({h})" for h in self.hidden_units)
        parts = [part for part in (conv, fc, "fc(num_actions)") if part]
        return f"{self.name}: " + " -> ".join(parts)


def c3f2(width_multiplier: float = 1.0) -> PolicySpec:
    """The paper's default C3F2 autonomy policy (3 conv + 2 FC layers)."""
    if width_multiplier <= 0:
        raise ConfigurationError(f"width_multiplier must be positive, got {width_multiplier}")
    scale = lambda channels: max(4, int(round(channels * width_multiplier)))
    return PolicySpec(
        name="C3F2",
        conv_layers=(
            ConvSpec(out_channels=scale(32), kernel_size=4, stride=2),
            ConvSpec(out_channels=scale(64), kernel_size=3, stride=2),
            ConvSpec(out_channels=scale(64), kernel_size=3, stride=1),
        ),
        hidden_units=(scale(256),),
    )


def c5f4(width_multiplier: float = 1.0) -> PolicySpec:
    """The larger C5F4 policy (5 conv + 4 FC layers, ~2x C3F2 parameters)."""
    if width_multiplier <= 0:
        raise ConfigurationError(f"width_multiplier must be positive, got {width_multiplier}")
    scale = lambda channels: max(4, int(round(channels * width_multiplier)))
    return PolicySpec(
        name="C5F4",
        conv_layers=(
            ConvSpec(out_channels=scale(32), kernel_size=4, stride=2),
            ConvSpec(out_channels=scale(64), kernel_size=3, stride=2),
            ConvSpec(out_channels=scale(64), kernel_size=3, stride=1),
            ConvSpec(out_channels=scale(96), kernel_size=3, stride=1, padding=1),
            ConvSpec(out_channels=scale(96), kernel_size=3, stride=1, padding=1),
        ),
        hidden_units=(scale(384), scale(256), scale(128)),
    )


def mlp(hidden_units: Sequence[int] = (64, 64), name: str = "MLP") -> PolicySpec:
    """A fully-connected Q-network for vector observations (fast profile)."""
    units = tuple(int(h) for h in hidden_units)
    if not units or any(h <= 0 for h in units):
        raise ConfigurationError(f"hidden_units must be positive, got {hidden_units}")
    return PolicySpec(name=name, conv_layers=(), hidden_units=units)


_REGISTRY = {
    "c3f2": c3f2,
    "c5f4": c5f4,
    "mlp": mlp,
}


def get_policy_spec(name: str) -> PolicySpec:
    """Look up a policy spec by name (``"c3f2"``, ``"c5f4"``, ``"mlp"``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(f"unknown policy {name!r}; expected one of {sorted(_REGISTRY)}")
    return _REGISTRY[key]()


def build_policy(
    spec: PolicySpec,
    observation_shape: Sequence[int],
    num_actions: int,
    rng: SeedLike = None,
    backend: BackendLike = None,
) -> Sequential:
    """Instantiate a Q-network from a spec for a given observation shape.

    Convolutional specs require a ``(C, H, W)`` observation; MLP specs accept
    any shape (it is flattened).  The output layer has ``num_actions`` units,
    one Q-value per discrete action.  ``backend`` selects the compute backend
    for every layer (default: the process-wide selection); initial weights are
    drawn from the same numpy RNG stream regardless of backend.
    """
    if num_actions <= 0:
        raise ConfigurationError(f"num_actions must be positive, got {num_actions}")
    observation_shape = tuple(int(dim) for dim in observation_shape)
    if any(dim <= 0 for dim in observation_shape):
        raise ConfigurationError(f"observation dimensions must be positive, got {observation_shape}")
    generator = as_generator(rng)
    compute = _resolve_backend(backend)
    layers: List = []

    current_shape = observation_shape
    if spec.conv_layers:
        if len(observation_shape) != 3:
            raise ConfigurationError(
                f"{spec.name} requires a (C, H, W) observation, got shape {observation_shape}"
            )
        for index, conv in enumerate(spec.conv_layers):
            layer = Conv2d(
                in_channels=current_shape[0],
                out_channels=conv.out_channels,
                kernel_size=conv.kernel_size,
                stride=conv.stride,
                padding=conv.padding,
                rng=generator,
                name=f"conv{index + 1}",
                backend=compute,
            )
            layers.append(layer)
            layers.append(ReLU(backend=compute))
            current_shape = layer.output_shape(current_shape)
        layers.append(Flatten(backend=compute))
        feature_dim = int(math.prod(current_shape))
    else:
        if len(observation_shape) != 1:
            layers.append(Flatten(backend=compute))
        feature_dim = int(math.prod(observation_shape))

    for index, hidden in enumerate(spec.hidden_units):
        layers.append(
            Linear(feature_dim, hidden, rng=generator, name=f"fc{index + 1}", backend=compute)
        )
        layers.append(ReLU(backend=compute))
        feature_dim = hidden
    layers.append(Linear(feature_dim, num_actions, rng=generator, name="q_head", backend=compute))

    return Sequential(layers, input_shape=observation_shape)


def parameter_footprint_bytes(network: Sequential, bits_per_weight: int = 8) -> int:
    """On-chip memory footprint of the policy parameters at a given precision."""
    if bits_per_weight <= 0:
        raise ConfigurationError(f"bits_per_weight must be positive, got {bits_per_weight}")
    return (network.num_parameters() * bits_per_weight + 7) // 8
