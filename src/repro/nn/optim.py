"""First-order optimizers operating on :class:`~repro.nn.layers.Parameter` lists.

BERRY's Algorithm 1 performs plain stochastic gradient descent on the averaged
clean/perturbed gradient (line 19); SGD with optional momentum is therefore
the reference optimizer, with RMSProp and Adam available because the original
Air-Learning DQN baselines use adaptive optimizers for faster convergence in
small-sample regimes.

All arithmetic goes through the parameters' shared
:class:`~repro.nn.backend.ArrayBackend`, and every buffer the step needs
(momentum/moment state, gradient-clip output, arithmetic scratch) is
preallocated at construction so the steady-state ``step()`` allocates no
arrays at all (``benchmarks/test_bench_optim.py`` pins the win).  The in-place
rewrites keep the exact operation order of the original expressions, so the
numpy backend remains bitwise identical to the pre-backend implementation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.nn.layers import Parameter


class Optimizer:
    """Base class: holds the parameter list and optional gradient clipping."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, grad_clip: Optional[float] = None) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if grad_clip is not None and grad_clip <= 0:
            raise ConfigurationError(f"grad_clip must be positive, got {grad_clip}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer constructed with no parameters")
        self.backend = self.parameters[0].backend
        self.lr = float(lr)
        self.grad_clip = grad_clip
        self._step_count = 0
        self._clip_buffers: List = (
            [self.backend.empty_like(p.data) for p in self.parameters]
            if grad_clip is not None
            else []
        )

    @property
    def step_count(self) -> int:
        return self._step_count

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def _clipped_grad(self, index: int, parameter: Parameter):
        if self.grad_clip is None:
            return parameter.grad
        return self.backend.clip(
            parameter.grad, -self.grad_clip, self.grad_clip, out=self._clip_buffers[index]
        )

    def step(self) -> None:
        raise NotImplementedError

    def global_grad_norm(self) -> float:
        """L2 norm of the concatenated gradient, useful for diagnostics."""
        backend = self.backend
        total = 0.0
        for parameter in self.parameters:
            total += float(backend.sum(backend.multiply(parameter.grad, parameter.grad)))
        return math.sqrt(total)


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr, grad_clip)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: List = [self.backend.zeros_like(p.data) for p in self.parameters]
        self._scratch: List = [self.backend.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        backend = self.backend
        for index, (parameter, velocity) in enumerate(zip(self.parameters, self._velocity)):
            grad = self._clipped_grad(index, parameter)
            if self.momentum > 0.0:
                backend.multiply(velocity, self.momentum, out=velocity)
                backend.add(velocity, grad, out=velocity)
                update = velocity
            else:
                update = grad
            scratch = self._scratch[index]
            backend.multiply(update, self.lr, out=scratch)
            backend.subtract(parameter.data, scratch, out=parameter.data)


class RMSProp(Optimizer):
    """RMSProp with a running average of squared gradients."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        decay: float = 0.99,
        epsilon: float = 1e-8,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr, grad_clip)
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._square_avg: List = [self.backend.zeros_like(p.data) for p in self.parameters]
        self._scratch1: List = [self.backend.empty_like(p.data) for p in self.parameters]
        self._scratch2: List = [self.backend.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        backend = self.backend
        for index, (parameter, square_avg) in enumerate(zip(self.parameters, self._square_avg)):
            grad = self._clipped_grad(index, parameter)
            scratch1 = self._scratch1[index]
            scratch2 = self._scratch2[index]
            backend.multiply(square_avg, self.decay, out=square_avg)
            backend.multiply(grad, grad, out=scratch1)
            backend.multiply(scratch1, 1.0 - self.decay, out=scratch1)
            backend.add(square_avg, scratch1, out=square_avg)
            backend.multiply(grad, self.lr, out=scratch1)
            backend.sqrt(square_avg, out=scratch2)
            backend.add(scratch2, self.epsilon, out=scratch2)
            backend.divide(scratch1, scratch2, out=scratch1)
            backend.subtract(parameter.data, scratch1, out=parameter.data)


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr, grad_clip)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._moment1: List = [self.backend.zeros_like(p.data) for p in self.parameters]
        self._moment2: List = [self.backend.zeros_like(p.data) for p in self.parameters]
        self._scratch1: List = [self.backend.empty_like(p.data) for p in self.parameters]
        self._scratch2: List = [self.backend.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        backend = self.backend
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for index, (parameter, moment1, moment2) in enumerate(
            zip(self.parameters, self._moment1, self._moment2)
        ):
            grad = self._clipped_grad(index, parameter)
            scratch1 = self._scratch1[index]
            scratch2 = self._scratch2[index]
            backend.multiply(moment1, self.beta1, out=moment1)
            backend.multiply(grad, 1.0 - self.beta1, out=scratch1)
            backend.add(moment1, scratch1, out=moment1)
            backend.multiply(moment2, self.beta2, out=moment2)
            backend.multiply(grad, grad, out=scratch1)
            backend.multiply(scratch1, 1.0 - self.beta2, out=scratch1)
            backend.add(moment2, scratch1, out=moment2)
            backend.divide(moment1, correction1, out=scratch1)
            backend.divide(moment2, correction2, out=scratch2)
            backend.multiply(scratch1, self.lr, out=scratch1)
            backend.sqrt(scratch2, out=scratch2)
            backend.add(scratch2, self.epsilon, out=scratch2)
            backend.divide(scratch1, scratch2, out=scratch1)
            backend.subtract(parameter.data, scratch1, out=parameter.data)


def build_optimizer(
    name: str,
    parameters: Sequence[Parameter],
    lr: float,
    grad_clip: Optional[float] = None,
    **kwargs: float,
) -> Optimizer:
    """Factory used by training configurations (``"sgd"``, ``"rmsprop"``, ``"adam"``)."""
    registry = {"sgd": SGD, "rmsprop": RMSProp, "adam": Adam}
    key = name.lower()
    if key not in registry:
        raise ConfigurationError(f"unknown optimizer {name!r}; expected one of {sorted(registry)}")
    return registry[key](parameters, lr=lr, grad_clip=grad_clip, **kwargs)
