"""First-order optimizers operating on :class:`~repro.nn.layers.Parameter` lists.

BERRY's Algorithm 1 performs plain stochastic gradient descent on the averaged
clean/perturbed gradient (line 19); SGD with optional momentum is therefore
the reference optimizer, with RMSProp and Adam available because the original
Air-Learning DQN baselines use adaptive optimizers for faster convergence in
small-sample regimes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Parameter


class Optimizer:
    """Base class: holds the parameter list and optional gradient clipping."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, grad_clip: Optional[float] = None) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if grad_clip is not None and grad_clip <= 0:
            raise ConfigurationError(f"grad_clip must be positive, got {grad_clip}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer constructed with no parameters")
        self.lr = float(lr)
        self.grad_clip = grad_clip
        self._step_count = 0

    @property
    def step_count(self) -> int:
        return self._step_count

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def _clipped_grad(self, parameter: Parameter) -> np.ndarray:
        if self.grad_clip is None:
            return parameter.grad
        return np.clip(parameter.grad, -self.grad_clip, self.grad_clip)

    def step(self) -> None:
        raise NotImplementedError

    def global_grad_norm(self) -> float:
        """L2 norm of the concatenated gradient, useful for diagnostics."""
        total = 0.0
        for parameter in self.parameters:
            total += float(np.sum(parameter.grad**2))
        return float(np.sqrt(total))


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr, grad_clip)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = self._clipped_grad(parameter)
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.data -= self.lr * update


class RMSProp(Optimizer):
    """RMSProp with a running average of squared gradients."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        decay: float = 0.99,
        epsilon: float = 1e-8,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr, grad_clip)
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._square_avg: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        for parameter, square_avg in zip(self.parameters, self._square_avg):
            grad = self._clipped_grad(parameter)
            square_avg *= self.decay
            square_avg += (1.0 - self.decay) * grad**2
            parameter.data -= self.lr * grad / (np.sqrt(square_avg) + self.epsilon)


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr, grad_clip)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._moment1: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for parameter, moment1, moment2 in zip(self.parameters, self._moment1, self._moment2):
            grad = self._clipped_grad(parameter)
            moment1 *= self.beta1
            moment1 += (1.0 - self.beta1) * grad
            moment2 *= self.beta2
            moment2 += (1.0 - self.beta2) * grad**2
            corrected1 = moment1 / correction1
            corrected2 = moment2 / correction2
            parameter.data -= self.lr * corrected1 / (np.sqrt(corrected2) + self.epsilon)


def build_optimizer(
    name: str,
    parameters: Sequence[Parameter],
    lr: float,
    grad_clip: Optional[float] = None,
    **kwargs: float,
) -> Optimizer:
    """Factory used by training configurations (``"sgd"``, ``"rmsprop"``, ``"adam"``)."""
    registry = {"sgd": SGD, "rmsprop": RMSProp, "adam": Adam}
    key = name.lower()
    if key not in registry:
        raise ConfigurationError(f"unknown optimizer {name!r}; expected one of {sorted(registry)}")
    return registry[key](parameters, lr=lr, grad_clip=grad_clip, **kwargs)
