"""Pluggable compute backends for the tensor hot paths.

The nn stack (:mod:`repro.nn.layers` / :mod:`repro.nn.optim` /
:mod:`repro.nn.loss`), the fixed-point quantizer and the fault-map corruption
operator all execute their array arithmetic through an :class:`ArrayBackend`
instead of calling ``numpy`` directly.  Two implementations ship:

* :class:`~repro.nn.backend.numpy_backend.NumpyBackend` — the default.  Its
  methods are one-line delegations to the exact numpy expressions the
  pre-backend code used, so results are **bitwise identical** to the
  pre-refactor stack (pinned by ``tests/test_nn_backend.py``).
* :class:`~repro.nn.backend.torch_backend.TorchBackend` — optional, loaded
  lazily; ``torch`` is only imported when the backend is actually requested
  (the guarded-import idiom), so the numpy-only install never pays for it.

Selection, most specific wins:

1. an explicit ``backend=`` argument / ``DqnConfig.backend`` field,
2. :func:`set_default_backend` (process-wide, what the CLI ``--backend`` sets),
3. the ``REPRO_BACKEND`` environment variable (inherited by worker processes),
4. ``"numpy"``.

Backends are stateless singletons: copy/deepcopy return the same object and
pickling round-trips through :func:`get_backend`, so networks that hold a
backend reference clone and cross process boundaries cheaply.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import BackendError

#: Environment variable consulted when no backend was selected explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class ArrayBackend:
    """Protocol of RNG-free deterministic array operations.

    Arrays produced by one backend must only be fed back into the same
    backend; conversion at module boundaries goes through :meth:`from_numpy`
    and :meth:`to_numpy`.  Methods taking ``out=`` write into a caller-owned
    buffer (and return it) so steady-state loops allocate nothing.
    """

    #: Registry key and display name of the backend.
    name: str = "abstract"

    #: Device the backend computes on; CPU for everything except an
    #: accelerator-selecting :class:`~repro.nn.backend.torch_backend.TorchBackend`.
    device: str = "cpu"

    @property
    def metric_tag(self) -> str:
        """The tag this backend contributes to metric names and fingerprints.

        CPU-only backends tag with their bare name; device-selecting backends
        (torch) append the device so GPU runs form a separate ledger series:
        ``train.backend.torch.cuda.gradient_steps`` vs
        ``train.backend.numpy.gradient_steps``.
        """
        return self.name

    # ------------------------------------------------------------------ conversion
    def asarray(self, values, dtype: str = "float64"):
        """``values`` as a backend array of ``dtype`` (no copy when possible)."""
        raise NotImplementedError

    def array(self, values, dtype: str = "float64"):
        """A fresh backend array holding a copy of ``values``."""
        raise NotImplementedError

    def from_numpy(self, values):
        """A backend array viewing (where possible) a numpy array."""
        raise NotImplementedError

    def to_numpy(self, values, copy: bool = False):
        """The numpy view (or copy) of a backend array."""
        raise NotImplementedError

    def copy(self, values):
        raise NotImplementedError

    def zeros(self, shape: Sequence[int], dtype: str = "float64"):
        raise NotImplementedError

    def zeros_like(self, values):
        raise NotImplementedError

    def empty_like(self, values):
        raise NotImplementedError

    def fill_(self, values, value: float) -> None:
        """In-place fill."""
        raise NotImplementedError

    def copyto_(self, destination, source) -> None:
        """In-place elementwise copy of ``source`` into ``destination``."""
        raise NotImplementedError

    def numel(self, values) -> int:
        raise NotImplementedError

    def astype(self, values, dtype: str):
        raise NotImplementedError

    # ------------------------------------------------------------------ shape
    def reshape(self, values, shape: Sequence[int]):
        raise NotImplementedError

    def transpose(self, values, axes: Optional[Sequence[int]] = None):
        raise NotImplementedError

    def ascontiguous(self, values):
        raise NotImplementedError

    # ------------------------------------------------------------------ elementwise
    def add(self, a, b, out=None):
        raise NotImplementedError

    def subtract(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def divide(self, a, b, out=None):
        raise NotImplementedError

    def sqrt(self, values, out=None):
        raise NotImplementedError

    def clip(self, values, low: float, high: float, out=None):
        raise NotImplementedError

    def abs(self, values):
        raise NotImplementedError

    def sign(self, values):
        raise NotImplementedError

    def round(self, values):
        """Round half to even (numpy/torch shared convention)."""
        raise NotImplementedError

    def where(self, condition, a, b):
        raise NotImplementedError

    # ------------------------------------------------------------------ linear algebra
    def matmul(self, a, b, out=None):
        raise NotImplementedError

    def einsum(self, subscripts: str, *operands):
        raise NotImplementedError

    # ------------------------------------------------------------------ reductions
    def sum(self, values, axis=None):
        raise NotImplementedError

    def max(self, values, axis=None):
        raise NotImplementedError

    def mean(self, values):
        raise NotImplementedError

    def argmax(self, values, axis=None):
        raise NotImplementedError

    def quantile(self, values, q: float) -> float:
        raise NotImplementedError

    def all_finite(self, values) -> bool:
        raise NotImplementedError

    def count_nonzero(self, values) -> int:
        raise NotImplementedError

    def any(self, values) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------ indexing
    def put_along_axis(self, values, indices, updates, axis: int) -> None:
        """In-place scatter of ``updates`` at ``indices`` along ``axis``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ convolution
    def im2col(self, images, kernel: Tuple[int, int], stride: int, padding: int):
        """``(N, C, H, W)`` images -> ``((N, OH*OW, C*KH*KW) patches, (OH, OW))``.

        The patch axis is channel-major ``(c, kh, kw)`` — the layout both
        numpy's strided-window reshape and torch's ``F.unfold`` produce.
        """
        raise NotImplementedError

    def col2im(
        self,
        cols,
        input_shape: Tuple[int, int, int, int],
        kernel: Tuple[int, int],
        stride: int,
        padding: int,
        out_hw: Tuple[int, int],
    ):
        """Scatter-add patch gradients back into image gradients (im2col inverse)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ integer / bit ops
    def mod(self, values, modulus: int):
        raise NotImplementedError

    def bitwise_xor(self, a, b):
        raise NotImplementedError

    def bitwise_and(self, a, b):
        raise NotImplementedError

    def bitwise_or(self, a, b):
        raise NotImplementedError

    def invert(self, values):
        raise NotImplementedError

    def left_shift(self, a, b):
        raise NotImplementedError

    def floor_divide(self, a, b):
        raise NotImplementedError

    def bitwise_xor_at(self, target, indices, masks) -> None:
        """In-place ``target[indices] ^= masks`` with duplicate-index accumulation."""
        raise NotImplementedError

    def bitwise_and_at(self, target, indices, masks) -> None:
        raise NotImplementedError

    def bitwise_or_at(self, target, indices, masks) -> None:
        raise NotImplementedError

    def popcount(self, values) -> int:
        """Total number of set bits across an unsigned-integer-valued array."""
        raise NotImplementedError

    # ------------------------------------------------------------------ identity plumbing
    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"

    def __copy__(self) -> "ArrayBackend":
        return self

    def __deepcopy__(self, memo) -> "ArrayBackend":
        return self

    def __reduce__(self):
        return (get_backend, (self.name,))


# ---------------------------------------------------------------------- registry
_LOADERS: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_default_name: Optional[str] = None


def register_backend(name: str, loader: Callable[[], ArrayBackend]) -> None:
    """Register ``name`` with a lazy loader returning the backend singleton."""
    if name in _LOADERS and _LOADERS[name] is not loader:
        raise BackendError(f"backend {name!r} is already registered")
    _LOADERS[name] = loader


def registered_backends() -> List[str]:
    """Every registered backend name (whether or not its library is installed)."""
    return sorted(_LOADERS)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its library actually loads."""
    if name not in _LOADERS:
        return False
    try:
        get_backend(name)
        return True
    except BackendError:
        return False


def default_backend_name() -> str:
    """The name :func:`get_backend` resolves when not given one explicitly."""
    if _default_name is not None:
        return _default_name
    return os.environ.get(BACKEND_ENV_VAR, "numpy")


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    The selection is validated eagerly so a misspelt or uninstalled backend
    fails at the CLI flag rather than deep inside a sweep job.
    """
    global _default_name
    if name is not None:
        get_backend(name)
    _default_name = name


def resolve_backend(backend: Union["ArrayBackend", str, None] = None) -> ArrayBackend:
    """Accept a backend instance, a registered name, or ``None`` (the default)."""
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


def peek_backend(name: Optional[str] = None) -> Optional[ArrayBackend]:
    """The already-instantiated backend for ``name``, or ``None``.

    Unlike :func:`get_backend` this never triggers a lazy library import —
    it is what the environment fingerprint uses to report the device of a
    backend *if* one was actually used, without paying a torch import just
    to write a ledger record.
    """
    key = name if name is not None else default_backend_name()
    return _INSTANCES.get(key)


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve a backend by name (``None`` -> the process default)."""
    key = name if name is not None else default_backend_name()
    instance = _INSTANCES.get(key)
    if instance is not None:
        return instance
    loader = _LOADERS.get(key)
    if loader is None:
        raise BackendError(
            f"unknown compute backend {key!r}; registered backends: {registered_backends()}"
        )
    instance = loader()
    _INSTANCES[key] = instance
    return instance


def _load_numpy() -> ArrayBackend:
    from repro.nn.backend.numpy_backend import NumpyBackend

    return NumpyBackend()


def _load_torch() -> ArrayBackend:
    # Deliberately lazy: importing this module (and therefore torch) only
    # happens when the torch backend is requested by name.
    from repro.nn.backend.torch_backend import TorchBackend

    return TorchBackend()


register_backend("numpy", _load_numpy)
register_backend("torch", _load_torch)

#: The default backend, resolved eagerly — every numpy-only code path uses
#: this singleton, so selection overhead is one module-attribute lookup.
NUMPY_BACKEND: ArrayBackend = get_backend("numpy")

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "NUMPY_BACKEND",
    "backend_available",
    "default_backend_name",
    "get_backend",
    "peek_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "set_default_backend",
]
