"""The default numpy compute backend.

Every method is a one-line delegation to the exact numpy expression the
pre-backend code used, which is what makes the refactored nn/quant/fault hot
paths **bitwise identical** to their pre-refactor implementations
(``tests/test_nn_backend.py`` pins the parity layer by layer and for full
training runs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.backend import ArrayBackend

_DTYPES = {
    "float64": np.float64,
    "float32": np.float32,
    "int64": np.int64,
    "int32": np.int32,
    "int8": np.int8,
    "uint64": np.uint64,
    "bool": np.bool_,
}


class NumpyBackend(ArrayBackend):
    """Numpy implementation of the :class:`~repro.nn.backend.ArrayBackend` protocol."""

    name = "numpy"

    # ------------------------------------------------------------------ conversion
    def asarray(self, values, dtype: str = "float64"):
        return np.asarray(values, dtype=_DTYPES[dtype])

    def array(self, values, dtype: str = "float64"):
        return np.array(values, dtype=_DTYPES[dtype])

    def from_numpy(self, values):
        return np.asarray(values)

    def to_numpy(self, values, copy: bool = False):
        return values.copy() if copy else np.asarray(values)

    def copy(self, values):
        return values.copy()

    def zeros(self, shape: Sequence[int], dtype: str = "float64"):
        return np.zeros(tuple(shape), dtype=_DTYPES[dtype])

    def zeros_like(self, values):
        return np.zeros_like(values)

    def empty_like(self, values):
        return np.empty_like(values)

    def fill_(self, values, value: float) -> None:
        values.fill(value)

    def copyto_(self, destination, source) -> None:
        np.copyto(destination, source)

    def numel(self, values) -> int:
        return int(values.size)

    def astype(self, values, dtype: str):
        return values.astype(_DTYPES[dtype])

    # ------------------------------------------------------------------ shape
    def reshape(self, values, shape: Sequence[int]):
        return values.reshape(shape)

    def transpose(self, values, axes: Optional[Sequence[int]] = None):
        return values.T if axes is None else values.transpose(axes)

    def ascontiguous(self, values):
        return np.ascontiguousarray(values)

    # ------------------------------------------------------------------ elementwise
    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def divide(self, a, b, out=None):
        return np.divide(a, b, out=out)

    def sqrt(self, values, out=None):
        return np.sqrt(values, out=out)

    def clip(self, values, low: float, high: float, out=None):
        return np.clip(values, low, high, out=out)

    def abs(self, values):
        return np.abs(values)

    def sign(self, values):
        return np.sign(values)

    def round(self, values):
        return np.round(values)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    # ------------------------------------------------------------------ linear algebra
    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands):
        return np.einsum(subscripts, *operands)

    # ------------------------------------------------------------------ reductions
    def sum(self, values, axis=None):
        return values.sum(axis=axis)

    def max(self, values, axis=None):
        return values.max(axis=axis)

    def mean(self, values):
        return np.mean(values)

    def argmax(self, values, axis=None):
        return values.argmax(axis=axis)

    def quantile(self, values, q: float) -> float:
        return float(np.quantile(values, q))

    def all_finite(self, values) -> bool:
        return bool(np.all(np.isfinite(values)))

    def count_nonzero(self, values) -> int:
        return int(np.count_nonzero(values))

    def any(self, values) -> bool:
        return bool(np.any(values))

    # ------------------------------------------------------------------ indexing
    def put_along_axis(self, values, indices, updates, axis: int) -> None:
        np.put_along_axis(values, indices, updates, axis=axis)

    # ------------------------------------------------------------------ convolution
    def im2col(self, images, kernel: Tuple[int, int], stride: int, padding: int):
        batch, channels, height, width = images.shape
        kernel_h, kernel_w = kernel
        out_h = (height + 2 * padding - kernel_h) // stride + 1
        out_w = (width + 2 * padding - kernel_w) // stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(
                f"convolution output would be empty for input {images.shape[2:]}, "
                f"kernel {kernel}, stride {stride}, padding {padding}"
            )
        if padding > 0:
            images = np.pad(
                images, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
            )
        strides = images.strides
        windows = np.lib.stride_tricks.as_strided(
            images,
            shape=(batch, channels, out_h, out_w, kernel_h, kernel_w),
            strides=(
                strides[0],
                strides[1],
                strides[2] * stride,
                strides[3] * stride,
                strides[2],
                strides[3],
            ),
            writeable=False,
        )
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
            batch, out_h * out_w, channels * kernel_h * kernel_w
        )
        return np.ascontiguousarray(cols), (out_h, out_w)

    def col2im(
        self,
        cols,
        input_shape: Tuple[int, int, int, int],
        kernel: Tuple[int, int],
        stride: int,
        padding: int,
        out_hw: Tuple[int, int],
    ):
        batch, channels, height, width = input_shape
        kernel_h, kernel_w = kernel
        out_h, out_w = out_hw
        padded = np.zeros(
            (batch, channels, height + 2 * padding, width + 2 * padding), dtype=np.float64
        )
        cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
        for row in range(kernel_h):
            row_end = row + stride * out_h
            for col in range(kernel_w):
                col_end = col + stride * out_w
                padded[:, :, row:row_end:stride, col:col_end:stride] += cols[
                    :, :, :, :, row, col
                ].transpose(0, 3, 1, 2)
        if padding > 0:
            return padded[:, :, padding:-padding, padding:-padding]
        return padded

    # ------------------------------------------------------------------ integer / bit ops
    def mod(self, values, modulus: int):
        return np.mod(values, modulus)

    def bitwise_xor(self, a, b):
        return np.bitwise_xor(a, b)

    def bitwise_and(self, a, b):
        return np.bitwise_and(a, b)

    def bitwise_or(self, a, b):
        return np.bitwise_or(a, b)

    def invert(self, values):
        return np.invert(values)

    def left_shift(self, a, b):
        return np.left_shift(a, b)

    def floor_divide(self, a, b):
        return np.floor_divide(a, b)

    def bitwise_xor_at(self, target, indices, masks) -> None:
        np.bitwise_xor.at(target, indices, masks)

    def bitwise_and_at(self, target, indices, masks) -> None:
        np.bitwise_and.at(target, indices, masks)

    def bitwise_or_at(self, target, indices, masks) -> None:
        np.bitwise_or.at(target, indices, masks)

    def popcount(self, values) -> int:
        values = np.asarray(values)
        if values.size == 0:
            return 0
        if hasattr(np, "bitwise_count"):  # numpy >= 2.0: one vectorised pass
            return int(np.bitwise_count(values.astype(np.uint64)).sum())
        unsigned = values.astype(np.uint64, copy=True)
        total = 0
        one = np.uint64(1)
        while unsigned.any():
            total += int(np.count_nonzero(unsigned & one))
            unsigned >>= one
        return total
