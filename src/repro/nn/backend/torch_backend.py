"""Optional PyTorch compute backend (CPU by default, device-selectable), loaded lazily.

The device comes from the ``REPRO_TORCH_DEVICE`` environment variable (or an
explicit ``TorchBackend(device=...)``); ``cuda`` requests are validated
eagerly against ``torch.cuda.is_available()``.  The backend's
:attr:`metric_tag` is ``torch.<device>``, so gradient-step metrics and ledger
fingerprints keep GPU and CPU runs in separate series.

``torch`` is imported under a guard the way SNIPPETS' iGibson environment
guards its torch import: importing *this module* does not require torch to be
installed — only instantiating :class:`TorchBackend` (which happens the first
time ``get_backend("torch")`` is called) does, and a missing install raises a
:class:`~repro.errors.BackendError` naming the ``pip install -e .[torch]``
extra.

All arithmetic runs in float64 on CPU tensors so results track the numpy
backend to floating-point tolerance (not bitwise — BLAS summation orders
differ); the win is torch's fused ``unfold``/``fold`` convolution kernels and
threaded matmuls on the gradient-bound training path
(``benchmarks/test_bench_backend.py`` gates the speedup).

Conversions at the module boundary are zero-copy: ``torch.from_numpy`` and
``Tensor.numpy()`` share memory for CPU tensors, which also lets the
duplicate-accumulating ``*_at`` scatter ops delegate to numpy's ``ufunc.at``
in place.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import BackendError, ShapeError
from repro.nn.backend import ArrayBackend

#: Environment variable selecting the torch device ("cpu", "cuda", "cuda:1"...).
TORCH_DEVICE_ENV_VAR = "REPRO_TORCH_DEVICE"

try:  # pragma: no cover - exercised only when torch is installed
    import torch
    import torch.nn.functional as F
except ImportError:  # pragma: no cover - the numpy-only install
    torch = None
    F = None


class TorchBackend(ArrayBackend):
    """PyTorch implementation of the :class:`~repro.nn.backend.ArrayBackend` protocol."""

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        if torch is None:
            raise BackendError(
                "the 'torch' backend was requested but torch is not installed; "
                "install it with: pip install -e .[torch]"
            )
        if device is None:
            device = os.environ.get(TORCH_DEVICE_ENV_VAR, "cpu")
        resolved = torch.device(device)
        if resolved.type == "cuda" and not torch.cuda.is_available():
            raise BackendError(
                f"torch device {device!r} was requested but CUDA is not available "
                "in this torch build"
            )
        self._device = resolved
        self.device = str(resolved)
        self._dtypes = {
            "float64": torch.float64,
            "float32": torch.float32,
            "int64": torch.int64,
            "int32": torch.int32,
            "int8": torch.int8,
            # Words on the fault path are non-negative and < 2**bits, so the
            # unsigned view fits comfortably in a signed 64-bit tensor.
            "uint64": torch.int64,
            "bool": torch.bool,
        }

    @property
    def metric_tag(self) -> str:
        # torch.cpu vs torch.cuda: GPU gradient timings must form their own
        # metric/ledger series, never average into the CPU baseline.
        return f"{self.name}.{self.device}"

    # ------------------------------------------------------------------ conversion
    def asarray(self, values, dtype: str = "float64"):
        if isinstance(values, torch.Tensor):
            return values.to(device=self._device, dtype=self._dtypes[dtype])
        return torch.as_tensor(
            np.asarray(values), dtype=self._dtypes[dtype], device=self._device
        )

    def array(self, values, dtype: str = "float64"):
        return self.asarray(values, dtype).clone()

    def from_numpy(self, values):
        tensor = torch.from_numpy(np.ascontiguousarray(values))
        # .to() is the identity on the CPU device, preserving the zero-copy
        # contract; on an accelerator it is the explicit host->device upload.
        return tensor.to(self._device) if self._device.type != "cpu" else tensor

    def to_numpy(self, values, copy: bool = False):
        if isinstance(values, torch.Tensor):
            array = values.detach().cpu().contiguous().numpy()
        else:
            array = np.asarray(values)
        return array.copy() if copy else array

    def copy(self, values):
        return values.clone()

    def zeros(self, shape: Sequence[int], dtype: str = "float64"):
        return torch.zeros(tuple(shape), dtype=self._dtypes[dtype], device=self._device)

    def zeros_like(self, values):
        return torch.zeros_like(values)

    def empty_like(self, values):
        return torch.empty_like(values)

    def fill_(self, values, value: float) -> None:
        values.fill_(value)

    def copyto_(self, destination, source) -> None:
        destination.copy_(source)

    def numel(self, values) -> int:
        return int(values.numel())

    def astype(self, values, dtype: str):
        return values.to(self._dtypes[dtype])

    # ------------------------------------------------------------------ shape
    def reshape(self, values, shape: Sequence[int]):
        return values.reshape(shape)

    def transpose(self, values, axes: Optional[Sequence[int]] = None):
        if axes is None:
            return values.t()
        return values.permute(tuple(axes))

    def ascontiguous(self, values):
        return values.contiguous()

    # ------------------------------------------------------------------ elementwise
    def add(self, a, b, out=None):
        return torch.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return torch.sub(a, b, out=out)

    def multiply(self, a, b, out=None):
        return torch.mul(a, b, out=out)

    def divide(self, a, b, out=None):
        return torch.div(a, b, out=out)

    def sqrt(self, values, out=None):
        return torch.sqrt(values, out=out)

    def clip(self, values, low: float, high: float, out=None):
        return torch.clamp(values, min=low, max=high, out=out)

    def abs(self, values):
        return torch.abs(values)

    def sign(self, values):
        return torch.sign(values)

    def round(self, values):
        return torch.round(values)

    def where(self, condition, a, b):
        if not isinstance(a, torch.Tensor):
            a = torch.as_tensor(a, dtype=b.dtype if isinstance(b, torch.Tensor) else None)
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, dtype=a.dtype)
        return torch.where(condition, a, b)

    # ------------------------------------------------------------------ linear algebra
    def matmul(self, a, b, out=None):
        return torch.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands):
        return torch.einsum(subscripts, *operands)

    # ------------------------------------------------------------------ reductions
    def sum(self, values, axis=None):
        if axis is None:
            return values.sum()
        return values.sum(dim=axis)

    def max(self, values, axis=None):
        if axis is None:
            return values.max()
        return values.max(dim=axis).values

    def mean(self, values):
        return values.mean()

    def argmax(self, values, axis=None):
        if axis is None:
            return values.argmax()
        return values.argmax(dim=axis)

    def quantile(self, values, q: float) -> float:
        return float(torch.quantile(values.reshape(-1), q))

    def all_finite(self, values) -> bool:
        return bool(torch.isfinite(values).all())

    def count_nonzero(self, values) -> int:
        return int(torch.count_nonzero(values))

    def any(self, values) -> bool:
        return bool(values.any())

    # ------------------------------------------------------------------ indexing
    def put_along_axis(self, values, indices, updates, axis: int) -> None:
        values.scatter_(axis, indices, updates)

    # ------------------------------------------------------------------ convolution
    def im2col(self, images, kernel: Tuple[int, int], stride: int, padding: int):
        batch, _, height, width = images.shape
        kernel_h, kernel_w = kernel
        out_h = (height + 2 * padding - kernel_h) // stride + 1
        out_w = (width + 2 * padding - kernel_w) // stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(
                f"convolution output would be empty for input {tuple(images.shape[2:])}, "
                f"kernel {kernel}, stride {stride}, padding {padding}"
            )
        # F.unfold emits (N, C*KH*KW, OH*OW) with the same channel-major
        # (c, kh, kw) patch ordering the numpy strided-window path produces.
        cols = F.unfold(images, kernel_size=kernel, padding=padding, stride=stride)
        return cols.transpose(1, 2).contiguous(), (out_h, out_w)

    def col2im(
        self,
        cols,
        input_shape: Tuple[int, int, int, int],
        kernel: Tuple[int, int],
        stride: int,
        padding: int,
        out_hw: Tuple[int, int],
    ):
        _, _, height, width = input_shape
        return F.fold(
            cols.transpose(1, 2),
            output_size=(height, width),
            kernel_size=kernel,
            padding=padding,
            stride=stride,
        )

    # ------------------------------------------------------------------ integer / bit ops
    def mod(self, values, modulus: int):
        return torch.remainder(values, modulus)

    def bitwise_xor(self, a, b):
        return torch.bitwise_xor(a, b)

    def bitwise_and(self, a, b):
        return torch.bitwise_and(a, b)

    def bitwise_or(self, a, b):
        return torch.bitwise_or(a, b)

    def invert(self, values):
        return torch.bitwise_not(values)

    def left_shift(self, a, b):
        return torch.bitwise_left_shift(a, b)

    def floor_divide(self, a, b):
        return torch.div(a, b, rounding_mode="floor")

    # The scatter ops must accumulate when several fault bits land in the same
    # word; CPU tensors share memory with their numpy views, so numpy's
    # ``ufunc.at`` updates the tensor in place without a copy.  On an
    # accelerator the update round-trips through a host copy — the fault path
    # is rare enough that correctness beats a custom scatter kernel.
    def _scatter_at(self, ufunc, target, indices, masks) -> None:
        if target.device.type == "cpu":
            ufunc.at(target.numpy(), self.to_numpy(indices), self.to_numpy(masks))
        else:
            host = target.detach().cpu().numpy()
            ufunc.at(host, self.to_numpy(indices), self.to_numpy(masks))
            target.copy_(torch.from_numpy(host))

    def bitwise_xor_at(self, target, indices, masks) -> None:
        self._scatter_at(np.bitwise_xor, target, indices, masks)

    def bitwise_and_at(self, target, indices, masks) -> None:
        self._scatter_at(np.bitwise_and, target, indices, masks)

    def bitwise_or_at(self, target, indices, masks) -> None:
        self._scatter_at(np.bitwise_or, target, indices, masks)

    def popcount(self, values) -> int:
        array = self.to_numpy(values)
        if array.size == 0:
            return 0
        if hasattr(np, "bitwise_count"):
            return int(np.bitwise_count(array.astype(np.uint64)).sum())
        unsigned = array.astype(np.uint64, copy=True)
        total = 0
        one = np.uint64(1)
        while unsigned.any():
            total += int(np.count_nonzero(unsigned & one))
            unsigned >>= one
        return total
