"""Neural-network layers with explicit forward and backward passes.

Each layer caches whatever it needs from the forward pass and exposes
``backward(grad_output)`` returning the gradient with respect to its input
while accumulating parameter gradients into :class:`Parameter.grad`.

The convolution is implemented with im2col/col2im which keeps the code
readable and fast enough (numpy matmul does the heavy lifting) for the small
policy networks used in the paper (C3F2, C5F4).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn import init as initializers
from repro.utils.rng import SeedLike, as_generator


class Parameter:
    """A trainable array together with its accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def copy_(self, other: "Parameter") -> None:
        """In-place copy of another parameter's values (used for target-network sync)."""
        if other.data.shape != self.data.shape:
            raise ShapeError(
                f"cannot copy parameter of shape {other.data.shape} into {self.data.shape}"
            )
        np.copyto(self.data, other.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Layer:
    """Base class for all layers."""

    #: Human-readable layer kind used by the accelerator cost model.
    kind: str = "generic"

    def __init__(self) -> None:
        self.name = self.__class__.__name__

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the per-sample output given a per-sample input shape."""
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class Linear(Layer):
    """Fully-connected layer ``y = x @ W.T + b``."""

    kind = "linear"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
        name: str = "linear",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Linear features must be positive, got in={in_features}, out={out_features}"
            )
        generator = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(
            initializers.kaiming_uniform((out_features, in_features), generator),
            name=f"{name}.weight",
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(
                initializers.uniform_bias((out_features,), in_features, generator),
                name=f"{name}.bias",
            )
        self._input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected input of shape (N, {self.in_features}), got {inputs.shape}"
            )
        self._input = inputs
        output = inputs @ self.weight.data.T
        if self.bias is not None:
            output = output + self.bias.data
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += grad_output.T @ self._input
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


def _im2col(
    images: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Convert ``(N, C, H, W)`` images into ``(N, OH*OW, C*KH*KW)`` patch matrices."""
    batch, channels, height, width = images.shape
    kernel_h, kernel_w = kernel
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution output would be empty for input {images.shape[2:]}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    if padding > 0:
        images = np.pad(
            images, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    strides = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, channels, out_h, out_w, kernel_h, kernel_w),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h * out_w, channels * kernel_h * kernel_w)
    return np.ascontiguousarray(cols), (out_h, out_w)


def _col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add patch gradients back into image gradients (inverse of im2col)."""
    batch, channels, height, width = input_shape
    kernel_h, kernel_w = kernel
    out_h, out_w = out_hw
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding), dtype=np.float64)
    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    for row in range(kernel_h):
        row_end = row + stride * out_h
        for col in range(kernel_w):
            col_end = col + stride * out_w
            padded[:, :, row:row_end:stride, col:col_end:stride] += cols[:, :, :, :, row, col].transpose(
                0, 3, 1, 2
            )
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs (cross-correlation, as in PyTorch)."""

    kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: SeedLike = None,
        name: str = "conv",
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ConfigurationError(
                "Conv2d parameters must be positive (padding non-negative): "
                f"in={in_channels}, out={out_channels}, k={kernel_size}, stride={stride}, pad={padding}"
            )
        generator = as_generator(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.name = name
        weight_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(
            initializers.kaiming_uniform(weight_shape, generator), name=f"{name}.weight"
        )
        self.bias: Optional[Parameter] = None
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(
                initializers.uniform_bias((out_channels,), fan_in, generator), name=f"{name}.bias"
            )
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected input of shape (N, {self.in_channels}, H, W), got {inputs.shape}"
            )
        cols, out_hw = _im2col(inputs, (self.kernel_size, self.kernel_size), self.stride, self.padding)
        self._cols = cols
        self._input_shape = inputs.shape
        self._out_hw = out_hw
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        output = cols @ weight_matrix.T
        if self.bias is not None:
            output = output + self.bias.data
        batch = inputs.shape[0]
        out_h, out_w = out_hw
        return output.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None or self._out_hw is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch = self._input_shape[0]
        out_h, out_w = self._out_hw
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(batch, out_h * out_w, self.out_channels)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        grad_weight = np.einsum("npo,npk->ok", grad_flat, self._cols)
        self.weight.grad += grad_weight.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=(0, 1))
        grad_cols = grad_flat @ weight_matrix
        return _col2im(
            grad_cols,
            self._input_shape,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
            self._out_hw,
        )

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_channels}, H, W), got {input_shape}"
            )
        _, height, width = input_shape
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(
                f"{self.name}: kernel {self.kernel_size} does not fit input {input_shape}"
            )
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class ReLU(Layer):
    """Rectified linear unit."""

    kind = "activation"

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._mask = inputs > 0.0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("ReLU: backward called before forward")
        return np.where(self._mask, grad_output, 0.0)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class LeakyReLU(Layer):
    """Leaky rectified linear unit with configurable negative slope."""

    kind = "activation"

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ConfigurationError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._mask = inputs > 0.0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("LeakyReLU: backward called before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Flatten(Layer):
    """Flatten all per-sample dimensions into one feature vector."""

    kind = "reshape"

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("Flatten: backward called before forward")
        return np.asarray(grad_output, dtype=np.float64).reshape(self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride) over ``(N, C, H, W)`` inputs."""

    kind = "pool"

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self._argmax: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ShapeError(f"MaxPool2d expects (N, C, H, W) inputs, got {inputs.shape}")
        batch, channels, height, width = inputs.shape
        k = self.kernel_size
        if height % k != 0 or width % k != 0:
            raise ShapeError(
                f"MaxPool2d kernel {k} must divide spatial dims ({height}, {width})"
            )
        self._input_shape = inputs.shape
        reshaped = inputs.reshape(batch, channels, height // k, k, width // k, k)
        windows = reshaped.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // k, width // k, k * k
        )
        self._argmax = windows.argmax(axis=-1)
        return windows.max(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise ShapeError("MaxPool2d: backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, channels, height, width = self._input_shape
        k = self.kernel_size
        grad_windows = np.zeros(
            (batch, channels, height // k, width // k, k * k), dtype=np.float64
        )
        np.put_along_axis(grad_windows, self._argmax[..., None], grad_output[..., None], axis=-1)
        grad_input = grad_windows.reshape(batch, channels, height // k, width // k, k, k)
        grad_input = grad_input.transpose(0, 1, 2, 4, 3, 5).reshape(batch, channels, height, width)
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        k = self.kernel_size
        if height % k != 0 or width % k != 0:
            raise ShapeError(
                f"MaxPool2d kernel {k} must divide spatial dims ({height}, {width})"
            )
        return (channels, height // k, width // k)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size})"
