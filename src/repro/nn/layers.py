"""Neural-network layers with explicit forward and backward passes.

Each layer caches whatever it needs from the forward pass and exposes
``backward(grad_output)`` returning the gradient with respect to its input
while accumulating parameter gradients into :class:`Parameter.grad`.

All array arithmetic goes through a pluggable
:class:`~repro.nn.backend.ArrayBackend` (``backend=`` on every constructor,
defaulting to the process-wide selection).  The numpy backend reproduces the
direct-numpy implementation bitwise; the torch backend trades that for faster
gradient-bound training.  The convolution is implemented with the backend's
im2col/col2im, which keeps the code readable while letting each backend bring
its fastest patch-extraction kernel (numpy strided windows, torch unfold).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

from repro.errors import ConfigurationError, ShapeError
from repro.nn import init as initializers
from repro.nn.backend import ArrayBackend, resolve_backend as _resolve_backend
from repro.utils.rng import SeedLike, as_generator

BackendLike = Union[ArrayBackend, str, None]


class Parameter:
    """A trainable array together with its accumulated gradient."""

    def __init__(self, data, name: str = "", backend: BackendLike = None) -> None:
        self.backend = _resolve_backend(backend)
        self.data = self.backend.asarray(data, "float64")
        self.grad = self.backend.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        return self.backend.numel(self.data)

    def zero_grad(self) -> None:
        self.backend.fill_(self.grad, 0.0)

    def copy_(self, other: "Parameter") -> None:
        """In-place copy of another parameter's values (used for target-network sync)."""
        if tuple(other.data.shape) != tuple(self.data.shape):
            raise ShapeError(
                f"cannot copy parameter of shape {tuple(other.data.shape)} "
                f"into {tuple(self.data.shape)}"
            )
        self.backend.copyto_(self.data, other.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Layer:
    """Base class for all layers."""

    #: Human-readable layer kind used by the accelerator cost model.
    kind: str = "generic"

    def __init__(self, backend: BackendLike = None) -> None:
        self.name = self.__class__.__name__
        self.backend = _resolve_backend(backend)

    def forward(self, inputs):
        raise NotImplementedError

    def backward(self, grad_output):
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the per-sample output given a per-sample input shape."""
        raise NotImplementedError

    def __call__(self, inputs):
        return self.forward(inputs)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class Linear(Layer):
    """Fully-connected layer ``y = x @ W.T + b``."""

    kind = "linear"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
        name: str = "linear",
        backend: BackendLike = None,
    ) -> None:
        super().__init__(backend)
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Linear features must be positive, got in={in_features}, out={out_features}"
            )
        generator = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(
            initializers.kaiming_uniform((out_features, in_features), generator),
            name=f"{name}.weight",
            backend=self.backend,
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(
                initializers.uniform_bias((out_features,), in_features, generator),
                name=f"{name}.bias",
                backend=self.backend,
            )
        self._input = None

    def forward(self, inputs):
        be = self.backend
        inputs = be.asarray(inputs, "float64")
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected input of shape (N, {self.in_features}), "
                f"got {tuple(inputs.shape)}"
            )
        self._input = inputs
        output = be.matmul(inputs, be.transpose(self.weight.data))
        if self.bias is not None:
            output = be.add(output, self.bias.data)
        return output

    def backward(self, grad_output):
        if self._input is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        be = self.backend
        grad_output = be.asarray(grad_output, "float64")
        be.add(
            self.weight.grad,
            be.matmul(be.transpose(grad_output), self._input),
            out=self.weight.grad,
        )
        if self.bias is not None:
            be.add(self.bias.grad, be.sum(grad_output, axis=0), out=self.bias.grad)
        return be.matmul(grad_output, self.weight.data)

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Layer):
    """2-D convolution over ``(N, C, H, W)`` inputs (cross-correlation, as in PyTorch)."""

    kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: SeedLike = None,
        name: str = "conv",
        backend: BackendLike = None,
    ) -> None:
        super().__init__(backend)
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ConfigurationError(
                "Conv2d parameters must be positive (padding non-negative): "
                f"in={in_channels}, out={out_channels}, k={kernel_size}, stride={stride}, pad={padding}"
            )
        generator = as_generator(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.name = name
        weight_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(
            initializers.kaiming_uniform(weight_shape, generator),
            name=f"{name}.weight",
            backend=self.backend,
        )
        self.bias: Optional[Parameter] = None
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(
                initializers.uniform_bias((out_channels,), fan_in, generator),
                name=f"{name}.bias",
                backend=self.backend,
            )
        self._cols = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, inputs):
        be = self.backend
        inputs = be.asarray(inputs, "float64")
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected input of shape (N, {self.in_channels}, H, W), "
                f"got {tuple(inputs.shape)}"
            )
        cols, out_hw = be.im2col(
            inputs, (self.kernel_size, self.kernel_size), self.stride, self.padding
        )
        self._cols = cols
        self._input_shape = tuple(inputs.shape)
        self._out_hw = out_hw
        weight_matrix = be.reshape(self.weight.data, (self.out_channels, -1))
        output = be.matmul(cols, be.transpose(weight_matrix))
        if self.bias is not None:
            output = be.add(output, self.bias.data)
        batch = inputs.shape[0]
        out_h, out_w = out_hw
        output = be.reshape(output, (batch, out_h, out_w, self.out_channels))
        return be.transpose(output, (0, 3, 1, 2))

    def backward(self, grad_output):
        if self._cols is None or self._input_shape is None or self._out_hw is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        be = self.backend
        grad_output = be.asarray(grad_output, "float64")
        batch = self._input_shape[0]
        out_h, out_w = self._out_hw
        grad_flat = be.reshape(
            be.transpose(grad_output, (0, 2, 3, 1)), (batch, out_h * out_w, self.out_channels)
        )
        weight_matrix = be.reshape(self.weight.data, (self.out_channels, -1))
        grad_weight = be.einsum("npo,npk->ok", grad_flat, self._cols)
        be.add(
            self.weight.grad,
            be.reshape(grad_weight, self.weight.shape),
            out=self.weight.grad,
        )
        if self.bias is not None:
            be.add(self.bias.grad, be.sum(grad_flat, axis=(0, 1)), out=self.bias.grad)
        grad_cols = be.matmul(grad_flat, weight_matrix)
        return be.col2im(
            grad_cols,
            self._input_shape,
            (self.kernel_size, self.kernel_size),
            self.stride,
            self.padding,
            self._out_hw,
        )

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_channels}, H, W), got {input_shape}"
            )
        _, height, width = input_shape
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(
                f"{self.name}: kernel {self.kernel_size} does not fit input {input_shape}"
            )
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class ReLU(Layer):
    """Rectified linear unit."""

    kind = "activation"

    def __init__(self, backend: BackendLike = None) -> None:
        super().__init__(backend)
        self._mask = None

    def forward(self, inputs):
        be = self.backend
        inputs = be.asarray(inputs, "float64")
        self._mask = inputs > 0.0
        return be.where(self._mask, inputs, 0.0)

    def backward(self, grad_output):
        if self._mask is None:
            raise ShapeError("ReLU: backward called before forward")
        return self.backend.where(self._mask, grad_output, 0.0)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class LeakyReLU(Layer):
    """Leaky rectified linear unit with configurable negative slope."""

    kind = "activation"

    def __init__(self, negative_slope: float = 0.01, backend: BackendLike = None) -> None:
        super().__init__(backend)
        if negative_slope < 0:
            raise ConfigurationError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._mask = None

    def forward(self, inputs):
        be = self.backend
        inputs = be.asarray(inputs, "float64")
        self._mask = inputs > 0.0
        return be.where(self._mask, inputs, be.multiply(inputs, self.negative_slope))

    def backward(self, grad_output):
        if self._mask is None:
            raise ShapeError("LeakyReLU: backward called before forward")
        be = self.backend
        return be.where(self._mask, grad_output, be.multiply(grad_output, self.negative_slope))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Flatten(Layer):
    """Flatten all per-sample dimensions into one feature vector."""

    kind = "reshape"

    def __init__(self, backend: BackendLike = None) -> None:
        super().__init__(backend)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs):
        be = self.backend
        inputs = be.asarray(inputs, "float64")
        self._input_shape = tuple(inputs.shape)
        return be.reshape(inputs, (inputs.shape[0], -1))

    def backward(self, grad_output):
        if self._input_shape is None:
            raise ShapeError("Flatten: backward called before forward")
        be = self.backend
        return be.reshape(be.asarray(grad_output, "float64"), self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(math.prod(input_shape)),)


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride) over ``(N, C, H, W)`` inputs."""

    kind = "pool"

    def __init__(self, kernel_size: int, backend: BackendLike = None) -> None:
        super().__init__(backend)
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self._argmax = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs):
        be = self.backend
        inputs = be.asarray(inputs, "float64")
        if inputs.ndim != 4:
            raise ShapeError(f"MaxPool2d expects (N, C, H, W) inputs, got {tuple(inputs.shape)}")
        batch, channels, height, width = inputs.shape
        k = self.kernel_size
        if height % k != 0 or width % k != 0:
            raise ShapeError(
                f"MaxPool2d kernel {k} must divide spatial dims ({height}, {width})"
            )
        self._input_shape = tuple(inputs.shape)
        reshaped = be.reshape(inputs, (batch, channels, height // k, k, width // k, k))
        windows = be.reshape(
            be.transpose(reshaped, (0, 1, 2, 4, 3, 5)),
            (batch, channels, height // k, width // k, k * k),
        )
        windows = be.ascontiguous(windows)
        self._argmax = be.argmax(windows, axis=-1)
        return be.max(windows, axis=-1)

    def backward(self, grad_output):
        if self._argmax is None or self._input_shape is None:
            raise ShapeError("MaxPool2d: backward called before forward")
        be = self.backend
        grad_output = be.asarray(grad_output, "float64")
        batch, channels, height, width = self._input_shape
        k = self.kernel_size
        grad_windows = be.zeros((batch, channels, height // k, width // k, k * k), "float64")
        be.put_along_axis(grad_windows, self._argmax[..., None], grad_output[..., None], axis=-1)
        grad_input = be.reshape(grad_windows, (batch, channels, height // k, width // k, k, k))
        grad_input = be.reshape(
            be.transpose(grad_input, (0, 1, 2, 4, 3, 5)), (batch, channels, height, width)
        )
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        k = self.kernel_size
        if height % k != 0 or width % k != 0:
            raise ShapeError(
                f"MaxPool2d kernel {k} must divide spatial dims ({height}, {width})"
            )
        return (channels, height // k, width // k)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size})"
