"""Classical Deep-Q-Network trainer (the paper's baseline autonomy policy).

This is standard DQN as summarised in Sec. II-A of the paper: an evaluation
network predicts Q-values, a periodically synchronised target network computes
the Bellman temporal-difference target, transitions come from an experience
replay buffer, and exploration follows an epsilon-greedy schedule.

The gradient computation is factored into :meth:`DqnTrainer.accumulate_gradients`
so that the BERRY trainer (:mod:`repro.core.berry`) can extend it with the
bit-error-perturbed pass of Algorithm 1 without duplicating the training loop.

Experience collection is *batched*: :meth:`DqnTrainer.train` drives
``config.train_lanes`` lockstep environment lanes through a
:class:`~repro.rl.collect.LockstepCollector`, pushes each lockstep step's
transitions into the replay buffer with one vectorised ``add_batch``, and
replays the gradient/target-sync cadence on the global transition counter.
``train_lanes=1`` (the default) reproduces the pre-refactor scalar loop
bitwise — same RNG stream consumption, same replay contents, same final
weights; the scalar loop itself survives as :meth:`DqnTrainer.train_serial`,
the reference implementation the equivalence tests pin against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.envs.navigation import NavigationEnv
from repro.nn.backend import get_backend, registered_backends
from repro.nn.loss import HuberLoss, MSELoss
from repro.nn.network import Sequential
from repro.nn.optim import build_optimizer
from repro.nn.policies import PolicySpec, build_policy, mlp
from repro.obs import get_metrics, span
from repro.rl.replay_buffer import ReplayBuffer, Transition
from repro.rl.schedules import LinearDecay, Schedule
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_generator, spawn_generators

logger = get_logger("rl.dqn")


@dataclass(frozen=True)
class DqnConfig:
    """Hyper-parameters of the DQN training loop."""

    gamma: float = 0.97
    learning_rate: float = 1e-3
    batch_size: int = 32
    buffer_capacity: int = 20_000
    learning_starts: int = 200
    train_frequency: int = 1
    target_update_interval: int = 200
    optimizer: str = "adam"
    loss: str = "huber"
    grad_clip: Optional[float] = 1.0
    epsilon_schedule: Schedule = field(default_factory=LinearDecay)
    #: Lockstep environment lanes used for experience collection.  1 replays
    #: the serial trainer bitwise; B > 1 collects B transitions per lockstep
    #: step (per-lane exploration streams, one batched Q forward per step).
    train_lanes: int = 1
    #: Compute backend for the Q-network, loss, optimizer and fault-injection
    #: hot paths ("numpy" reproduces the pre-backend trainer bitwise; "torch"
    #: requires the optional torch extra and trades bitwise identity for
    #: faster gradient steps).
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise TrainingError(f"gamma must be in [0, 1), got {self.gamma}")
        if self.batch_size <= 0 or self.buffer_capacity <= 0:
            raise TrainingError("batch_size and buffer_capacity must be positive")
        if self.learning_starts < 0 or self.train_frequency <= 0:
            raise TrainingError("learning_starts must be >= 0 and train_frequency > 0")
        if self.target_update_interval <= 0:
            raise TrainingError("target_update_interval must be positive")
        if self.loss not in ("huber", "mse"):
            raise TrainingError(f"loss must be 'huber' or 'mse', got {self.loss!r}")
        if self.train_lanes <= 0:
            raise TrainingError(f"train_lanes must be positive, got {self.train_lanes}")
        if self.backend not in registered_backends():
            raise TrainingError(
                f"unknown backend {self.backend!r}; registered backends: {registered_backends()}"
            )


@dataclass
class TrainingHistory:
    """Per-episode statistics collected during training."""

    episode_rewards: List[float] = field(default_factory=list)
    episode_successes: List[bool] = field(default_factory=list)
    episode_lengths: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    total_steps: int = 0
    gradient_steps: int = 0

    @property
    def num_episodes(self) -> int:
        return len(self.episode_rewards)

    @staticmethod
    def _recent(values: List, window: Optional[int]) -> List:
        """The last ``window`` entries (all of them when ``window`` is None).

        ``window`` must be a positive count: a falsy 0 used to silently mean
        "all episodes", which is indistinguishable from the caller asking for
        an empty window.
        """
        if window is None:
            return values
        if window <= 0:
            raise TrainingError(f"window must be a positive episode count, got {window}")
        return values[-window:]

    def success_rate(self, window: Optional[int] = None) -> float:
        """Fraction of successful episodes, optionally over the last ``window`` episodes."""
        successes = self._recent(self.episode_successes, window)
        if not successes:
            return 0.0
        return sum(successes) / len(successes)

    def mean_reward(self, window: Optional[int] = None) -> float:
        rewards = self._recent(self.episode_rewards, window)
        if not rewards:
            return 0.0
        return float(np.mean(rewards))


class DqnTrainer:
    """Classical DQN training loop on a :class:`NavigationEnv`."""

    def __init__(
        self,
        env: NavigationEnv,
        policy_spec: Optional[PolicySpec] = None,
        config: DqnConfig = DqnConfig(),
        rng: SeedLike = 0,
    ) -> None:
        self.env = env
        self.config = config
        self._rng = as_generator(rng)
        spec = policy_spec if policy_spec is not None else mlp()
        observation_shape = env.observation_space.shape
        self.backend = get_backend(config.backend)
        self.q_network = build_policy(
            spec, observation_shape, env.action_space.n, rng=self._rng, backend=self.backend
        )
        self.target_network = self.q_network.clone()
        self.optimizer = build_optimizer(
            config.optimizer,
            self.q_network.parameters(),
            lr=config.learning_rate,
            grad_clip=config.grad_clip,
        )
        self.loss_fn = (
            HuberLoss(backend=self.backend)
            if config.loss == "huber"
            else MSELoss(backend=self.backend)
        )
        self.replay = ReplayBuffer(config.buffer_capacity, observation_shape)
        self.history = TrainingHistory()
        self.policy_spec = spec

    # ------------------------------------------------------------------ acting
    def greedy_action(self, observation: np.ndarray) -> int:
        """The action with the highest predicted Q-value."""
        q_values = self.q_network.forward(observation[np.newaxis, ...])
        return int(np.argmax(q_values[0]))

    def act(self, observation: np.ndarray, epsilon: float) -> int:
        """Epsilon-greedy action selection."""
        if self._rng.random() < epsilon:
            return self.env.action_space.sample(self._rng)
        return self.greedy_action(observation)

    # ------------------------------------------------------------------ learning
    def compute_td_targets(self, batch: Transition, target_network: Sequential) -> np.ndarray:
        """Bellman targets ``y_j = r_j + gamma * max_a' Q(s', a'; theta^-)`` (Eq. 1)."""
        next_q = target_network.forward(batch.next_observations)
        bootstrap = np.max(next_q, axis=1)
        return batch.rewards + self.config.gamma * (1.0 - batch.dones) * bootstrap

    def td_loss_and_backward(
        self, network: Sequential, batch: Transition, targets: np.ndarray
    ) -> float:
        """Forward/backward of the TD loss through ``network``; gradients accumulate in place."""
        q_values = network.forward(batch.observations)
        batch_indices = np.arange(batch.batch_size)
        predictions = q_values[batch_indices, batch.actions]
        loss_value, grad_predictions = self.loss_fn(predictions, targets)
        grad_q = np.zeros_like(q_values)
        grad_q[batch_indices, batch.actions] = grad_predictions
        network.backward(grad_q)
        return loss_value

    def accumulate_gradients(self, batch: Transition) -> float:
        """Compute gradients for one mini-batch into ``self.q_network`` (clean pass only).

        Subclasses (the BERRY trainer) override this to add the bit-error
        perturbed pass; the returned value is the scalar loss used for logging.
        """
        targets = self.compute_td_targets(batch, self.target_network)
        return self.td_loss_and_backward(self.q_network, batch, targets)

    def learn_on_batch(self, batch: Transition) -> float:
        """One optimizer update from one mini-batch."""
        metrics = get_metrics()
        started = time.perf_counter() if metrics.enabled else 0.0
        with span(
            "train.gradient_step", backend=self.backend.name, device=self.backend.device
        ):
            self.optimizer.zero_grad()
            loss_value = self.accumulate_gradients(batch)
            self.optimizer.step()
        self.history.gradient_steps += 1
        if metrics.enabled:
            metrics.counter("train.gradient_steps").inc()
            metrics.histogram("train.loss").observe(loss_value)
            # metric_tag carries the device for device-selecting backends
            # ("torch.cpu"/"torch.cuda"), so GPU and CPU runs never share a series.
            tag = self.backend.metric_tag
            metrics.counter(f"train.backend.{tag}.gradient_steps").inc()
            metrics.histogram(f"train.backend.{tag}.gradient_step_s").observe(
                time.perf_counter() - started
            )
        return loss_value

    def sync_target_network(self) -> None:
        """Copy the evaluation network weights into the target network (line 21)."""
        self.target_network.copy_from(self.q_network)

    # ------------------------------------------------------------------ training loop
    def train(
        self,
        num_episodes: int,
        max_steps_per_episode: Optional[int] = None,
        callback: Optional[Callable[[int, TrainingHistory], None]] = None,
    ) -> TrainingHistory:
        """Run the training loop for ``num_episodes`` episodes on lockstep lanes.

        Experience collection runs ``config.train_lanes`` batched environment
        lanes (capped at ``num_episodes``): one batched Q forward per lockstep
        step, per-lane exploration streams, one ``add_batch`` replay push, and
        the gradient/target-sync cadence interleaved on the global transition
        counter exactly as the serial loop would.  ``train_lanes=1`` shares
        the serial environment's and trainer's RNG streams and reproduces
        :meth:`train_serial` bitwise.  ``callback(episode, history)`` fires
        once per completed episode, in completion order (== episode order at
        B = 1).
        """
        from repro.envs.batch import BatchedNavigationEnv
        from repro.rl.collect import LockstepCollector

        if num_episodes <= 0:
            raise TrainingError(f"num_episodes must be positive, got {num_episodes}")
        lanes = min(self.config.train_lanes, num_episodes)
        batch_env = BatchedNavigationEnv.from_env(
            self.env, batch_size=lanes, share_rng=lanes == 1
        )
        exploration = (
            [self._rng] if lanes == 1 else spawn_generators(self._rng, lanes)
        )
        collector = LockstepCollector(
            batch_env,
            self.q_network,
            self.config.epsilon_schedule,
            exploration,
            num_episodes,
            max_steps_per_episode,
        )
        while collector.collecting:
            step_batch = collector.collect(self.history.total_steps)
            self._absorb_step_batch(step_batch, callback)
        return self.history

    def _absorb_step_batch(self, step_batch, callback) -> None:
        """Store one lockstep step's transitions and replay the learning cadence.

        The k transitions are pushed in one vectorised insert, then the
        gradient / target-sync checks run once per global counter value
        crossed — with the replay size the serial loop would have seen at that
        counter — so B = 1 matches the scalar loop decision-for-decision and
        B > 1 keeps the same updates-per-transition budget.
        """
        adds_before = len(self.replay)
        self.replay.add_batch(
            step_batch.observations,
            step_batch.actions,
            step_batch.rewards,
            step_batch.next_observations,
            step_batch.dones,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge("train.replay_fill").set(len(self.replay) / self.replay.capacity)
        start = self.history.total_steps
        count = step_batch.num_transitions
        self.history.total_steps += count
        threshold = max(self.config.learning_starts, self.config.batch_size)
        for offset in range(1, count + 1):
            step = start + offset
            stored = min(adds_before + offset, self.replay.capacity)
            if stored >= threshold and step % self.config.train_frequency == 0:
                batch = self.replay.sample(self.config.batch_size, self._rng)
                self.history.losses.append(self.learn_on_batch(batch))
            if step % self.config.target_update_interval == 0:
                self.sync_target_network()
        for record in step_batch.finished:
            self.history.episode_rewards.append(record.total_reward)
            self.history.episode_successes.append(record.success)
            self.history.episode_lengths.append(record.steps)
            if callback is not None:
                callback(record.episode, self.history)
            if (record.episode + 1) % 50 == 0:
                logger.info(
                    "episode %d: reward=%.2f success_rate(last 50)=%.2f",
                    record.episode + 1,
                    record.total_reward,
                    self.history.success_rate(window=50),
                )

    def train_serial(
        self,
        num_episodes: int,
        max_steps_per_episode: Optional[int] = None,
        callback: Optional[Callable[[int, TrainingHistory], None]] = None,
    ) -> TrainingHistory:
        """The pre-refactor scalar training loop, kept as the reference.

        One environment, one observation, one transition at a time.  This is
        the loop :meth:`train` at ``train_lanes=1`` must reproduce bitwise
        (same RNG stream consumption, same replay contents, same final
        weights); ``tests/test_rl_batched_training.py`` pins the equivalence.
        """
        if num_episodes <= 0:
            raise TrainingError(f"num_episodes must be positive, got {num_episodes}")
        max_steps = max_steps_per_episode or self.env.config.max_steps
        for episode in range(num_episodes):
            observation = self.env.reset()
            episode_reward = 0.0
            episode_success = False
            steps = 0
            for _ in range(max_steps):
                epsilon = self.config.epsilon_schedule(self.history.total_steps)
                action = self.act(observation, epsilon)
                result = self.env.step(action)
                done = result.terminated
                self.replay.add(observation, action, result.reward, result.observation, done)
                observation = result.observation
                episode_reward += result.reward
                self.history.total_steps += 1
                steps += 1

                if (
                    len(self.replay) >= max(self.config.learning_starts, self.config.batch_size)
                    and self.history.total_steps % self.config.train_frequency == 0
                ):
                    batch = self.replay.sample(self.config.batch_size, self._rng)
                    loss_value = self.learn_on_batch(batch)
                    self.history.losses.append(loss_value)
                if self.history.total_steps % self.config.target_update_interval == 0:
                    self.sync_target_network()
                if result.terminated or result.truncated:
                    episode_success = bool(result.info["success"])
                    break
            self.history.episode_rewards.append(episode_reward)
            self.history.episode_successes.append(episode_success)
            self.history.episode_lengths.append(steps)
            if callback is not None:
                callback(episode, self.history)
            if (episode + 1) % 50 == 0:
                logger.info(
                    "episode %d: reward=%.2f success_rate(last 50)=%.2f",
                    episode + 1,
                    episode_reward,
                    self.history.success_rate(window=50),
                )
        return self.history

    # ------------------------------------------------------------------ policy export
    def policy(self) -> Callable[[np.ndarray], int]:
        """A greedy policy callable backed by the current Q-network."""
        return self.greedy_action
