"""Policy evaluation, with and without injected bit errors.

The paper evaluates every operating point over many persistent fault maps
(500 per point at full scale) and reports the average task success rate and
path statistics.  :func:`evaluate_under_faults` reproduces that protocol on
the lockstep batched rollout core: the clean policy parameters are quantized
*once*, each fault map corrupts a per-map view of the stored integer codes,
and the corrupted policy flies its mission batch with one
``network.forward`` per lockstep step instead of one per observation.

Policies are batch-first: :class:`GreedyPolicy` implements the
:data:`~repro.envs.vector.BatchPolicy` protocol (observation matrix ->
action vector) while remaining callable on a single observation for the
legacy scalar :data:`~repro.envs.vector.PolicyFn` protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.envs.batch import BatchedNavigationEnv, DEFAULT_BATCH_SIZE, run_batched_episodes
from repro.envs.navigation import NavigationEnv
from repro.envs.vector import (
    BatchPolicy,
    EpisodeResult,
    PolicyFn,
    mean_path_length,
    run_episodes,
    success_rate,
)
from repro.faults.fault_map import FaultMap
from repro.faults.injection import BitErrorInjector
from repro.nn.network import Sequential
from repro.quant.fixed_point import QuantizationConfig
from repro.utils.rng import SeedLike, as_generator, spawn_generators


class GreedyPolicy:
    """Greedy action selection over a Q-network, batch-first.

    :meth:`act_batch` is the native batched protocol — one forward over the
    whole observation matrix plus a row-wise argmax — and ``__call__`` keeps
    the legacy single-observation protocol so the policy drops into both the
    lockstep batched core and the serial episode loop.
    """

    is_batch_policy = True

    def __init__(self, network: Sequential) -> None:
        self.network = network

    def act_batch(self, observations: np.ndarray) -> np.ndarray:
        q_values = self.network.forward(np.asarray(observations, dtype=np.float64))
        return np.argmax(q_values, axis=1)

    def __call__(self, observation: np.ndarray) -> int:
        q_values = self.network.forward(observation[np.newaxis, ...])
        return int(np.argmax(q_values[0]))


def greedy_policy(network: Sequential) -> GreedyPolicy:
    """Wrap a Q-network into a greedy (batch-capable) policy."""
    return GreedyPolicy(network)


@dataclass(frozen=True)
class PolicyEvaluation:
    """Aggregate statistics of a batch of evaluation episodes."""

    num_episodes: int
    success_rate: float
    collision_rate: float
    mean_steps: float
    mean_path_length_m: float
    mean_reward: float

    @classmethod
    def from_results(cls, results: Sequence[EpisodeResult]) -> "PolicyEvaluation":
        if not results:
            raise ValueError("cannot summarise an empty list of episode results")
        return cls(
            num_episodes=len(results),
            success_rate=success_rate(results),
            collision_rate=sum(1 for r in results if r.collision) / len(results),
            mean_steps=float(np.mean([r.steps for r in results])),
            # Over successful episodes only, consistent with
            # mean_path_length(successful_only=True): NaN when nothing
            # succeeded, never a silent fallback to failed-episode paths.
            mean_path_length_m=mean_path_length(results),
            mean_reward=float(np.mean([r.total_reward for r in results])),
        )


@dataclass(frozen=True)
class RobustnessPoint:
    """Evaluation of one policy at one bit-error rate, averaged over fault maps."""

    ber_percent: float
    num_fault_maps: int
    episodes_per_map: int
    success_rate: float
    success_rate_std: float
    mean_path_length_m: float
    per_map_success_rates: tuple

    @property
    def success_rate_percent(self) -> float:
        return 100.0 * self.success_rate


def _episode_reset_base(rng: np.random.Generator, num_episodes: int) -> int:
    """A reset-seed base such that ``base + i`` stays a valid 31-bit seed."""
    return int(rng.integers(0, 2**31 - 1 - num_episodes))


def evaluate_policy(
    env: NavigationEnv,
    network: Sequential,
    num_episodes: int = 20,
    rng: SeedLike = 0,
    batch_size: Optional[int] = None,
) -> PolicyEvaluation:
    """Evaluate a (float, error-free) policy network greedily over many episodes.

    Episodes are reset-seeded from ``rng`` and executed in lockstep batches
    (see :func:`~repro.envs.vector.run_episodes`); the wrapped ``env`` is
    left untouched.
    """
    reset_base = _episode_reset_base(as_generator(rng), num_episodes)
    results = run_episodes(
        env,
        greedy_policy(network),
        num_episodes,
        rng=rng,
        reset_seed=reset_base,
        batch_size=batch_size,
    )
    return PolicyEvaluation.from_results(results)


def evaluate_under_faults(
    env: NavigationEnv,
    network: Sequential,
    ber_percent: float,
    num_fault_maps: int = 10,
    episodes_per_map: int = 5,
    quantization: QuantizationConfig = QuantizationConfig(),
    fault_maps: Optional[Sequence[FaultMap]] = None,
    stuck_at_1_bias: float = 0.5,
    rng: SeedLike = 0,
    batch_size: Optional[int] = None,
) -> RobustnessPoint:
    """Evaluate the deployed policy under persistent bit errors.

    For each fault map, the (once-)quantized policy parameters are corrupted
    and the corrupted policy flies ``episodes_per_map`` missions on the
    batched rollout core; success rates are averaged over maps, mirroring the
    paper's 500-fault-map protocol.  ``fault_maps`` overrides the random-map
    sampling (used for the profiled chips of Table III and for on-device
    evaluation at a fixed map).  Per-map path lengths average successful
    missions only; a map that loses every mission contributes no path sample
    (the aggregate is NaN only when *every* map lost every mission).
    """
    injector = BitErrorInjector.for_network(network, quantization)
    map_rng, episode_rng = spawn_generators(rng, 2)
    if fault_maps is None:
        maps: List[FaultMap] = [
            FaultMap.random(
                injector.memory_bits,
                ber_percent / 100.0,
                rng=map_rng,
                stuck_at_1_bias=stuck_at_1_bias,
                label=f"eval-map-{index}",
            )
            for index in range(num_fault_maps)
        ]
    else:
        maps = list(fault_maps)
    if not maps:
        raise ValueError("at least one fault map is required")

    # Quantize the clean parameters once; each map corrupts a per-map view.
    # The warm cache extends "once" across calls: fused BER levels and warm
    # pool re-runs evaluating the same trained policy reuse the same codes.
    quantized = injector.quantize_state_cached(network.state_dict())
    deployed = network.clone()
    lanes = min(episodes_per_map, batch_size if batch_size is not None else DEFAULT_BATCH_SIZE)
    batch_env = BatchedNavigationEnv.from_env(env, batch_size=max(1, lanes))

    per_map_success: List[float] = []
    per_map_paths: List[float] = []
    for fault_map in maps:
        deployed.load_state_dict(injector.perturb_quantized_state(quantized, fault_map))
        reset_base = _episode_reset_base(episode_rng, episodes_per_map)
        results = run_batched_episodes(
            batch_env,
            greedy_policy(deployed),
            episodes_per_map,
            reset_seed=reset_base,
        )
        per_map_success.append(success_rate(results))
        per_map_paths.append(mean_path_length(results))

    path_samples = [path for path in per_map_paths if not math.isnan(path)]
    return RobustnessPoint(
        ber_percent=ber_percent,
        num_fault_maps=len(maps),
        episodes_per_map=episodes_per_map,
        success_rate=float(np.mean(per_map_success)),
        success_rate_std=float(np.std(per_map_success)),
        mean_path_length_m=float(np.mean(path_samples)) if path_samples else float("nan"),
        per_map_success_rates=tuple(per_map_success),
    )


def robustness_curve(
    env: NavigationEnv,
    network: Sequential,
    ber_percentages: Sequence[float],
    num_fault_maps: int = 10,
    episodes_per_map: int = 5,
    quantization: QuantizationConfig = QuantizationConfig(),
    rng: SeedLike = 0,
) -> Dict[float, RobustnessPoint]:
    """Success rate vs bit-error rate (the x-axis sweep of Fig. 3 / Table I)."""
    generators = spawn_generators(rng, len(ber_percentages))
    curve: Dict[float, RobustnessPoint] = {}
    for ber, generator in zip(ber_percentages, generators):
        curve[float(ber)] = evaluate_under_faults(
            env,
            network,
            ber_percent=float(ber),
            num_fault_maps=num_fault_maps,
            episodes_per_map=episodes_per_map,
            quantization=quantization,
            rng=generator,
        )
    return curve
