"""Policy evaluation, with and without injected bit errors.

The paper evaluates every operating point over many persistent fault maps
(500 per point at full scale) and reports the average task success rate and
path statistics.  :func:`evaluate_under_faults` reproduces that protocol: for
each fault map the deployed (quantized) policy parameters are corrupted once,
the corrupted policy flies a batch of missions, and the per-map success rates
are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.envs.navigation import NavigationEnv
from repro.envs.vector import EpisodeResult, run_episodes, success_rate
from repro.faults.fault_map import FaultMap
from repro.faults.injection import BitErrorInjector
from repro.nn.network import Sequential
from repro.quant.fixed_point import QuantizationConfig
from repro.utils.rng import SeedLike, as_generator, spawn_generators

PolicyFn = Callable[[np.ndarray], int]


def greedy_policy(network: Sequential) -> PolicyFn:
    """Wrap a Q-network into a greedy policy callable."""

    def policy(observation: np.ndarray) -> int:
        q_values = network.forward(observation[np.newaxis, ...])
        return int(np.argmax(q_values[0]))

    return policy


@dataclass(frozen=True)
class PolicyEvaluation:
    """Aggregate statistics of a batch of evaluation episodes."""

    num_episodes: int
    success_rate: float
    collision_rate: float
    mean_steps: float
    mean_path_length_m: float
    mean_reward: float

    @classmethod
    def from_results(cls, results: Sequence[EpisodeResult]) -> "PolicyEvaluation":
        if not results:
            raise ValueError("cannot summarise an empty list of episode results")
        successful = [r for r in results if r.success]
        path_lengths = [r.path_length_m for r in (successful or results)]
        return cls(
            num_episodes=len(results),
            success_rate=success_rate(results),
            collision_rate=sum(1 for r in results if r.collision) / len(results),
            mean_steps=float(np.mean([r.steps for r in results])),
            mean_path_length_m=float(np.mean(path_lengths)),
            mean_reward=float(np.mean([r.total_reward for r in results])),
        )


@dataclass(frozen=True)
class RobustnessPoint:
    """Evaluation of one policy at one bit-error rate, averaged over fault maps."""

    ber_percent: float
    num_fault_maps: int
    episodes_per_map: int
    success_rate: float
    success_rate_std: float
    mean_path_length_m: float
    per_map_success_rates: tuple

    @property
    def success_rate_percent(self) -> float:
        return 100.0 * self.success_rate


def evaluate_policy(
    env: NavigationEnv,
    network: Sequential,
    num_episodes: int = 20,
    rng: SeedLike = 0,
) -> PolicyEvaluation:
    """Evaluate a (float, error-free) policy network greedily over many episodes."""
    results = run_episodes(env, greedy_policy(network), num_episodes, rng=rng)
    return PolicyEvaluation.from_results(results)


def evaluate_under_faults(
    env: NavigationEnv,
    network: Sequential,
    ber_percent: float,
    num_fault_maps: int = 10,
    episodes_per_map: int = 5,
    quantization: QuantizationConfig = QuantizationConfig(),
    fault_maps: Optional[Sequence[FaultMap]] = None,
    stuck_at_1_bias: float = 0.5,
    rng: SeedLike = 0,
) -> RobustnessPoint:
    """Evaluate the deployed policy under persistent bit errors.

    For each fault map, the policy parameters are quantized, corrupted once and
    the corrupted policy flies ``episodes_per_map`` missions; success rates are
    averaged over maps, mirroring the paper's 500-fault-map protocol.
    ``fault_maps`` overrides the random-map sampling (used for the profiled
    chips of Table III and for on-device evaluation at a fixed map).
    """
    injector = BitErrorInjector.for_network(network, quantization)
    map_rng, episode_rng = spawn_generators(rng, 2)
    if fault_maps is None:
        maps: List[FaultMap] = [
            FaultMap.random(
                injector.memory_bits,
                ber_percent / 100.0,
                rng=map_rng,
                stuck_at_1_bias=stuck_at_1_bias,
                label=f"eval-map-{index}",
            )
            for index in range(num_fault_maps)
        ]
    else:
        maps = list(fault_maps)
    if not maps:
        raise ValueError("at least one fault map is required")

    per_map_success: List[float] = []
    per_map_paths: List[float] = []
    for fault_map in maps:
        perturbed = injector.perturb_network(network, fault_map)
        results = run_episodes(
            env, greedy_policy(perturbed), episodes_per_map, rng=episode_rng
        )
        per_map_success.append(success_rate(results))
        successful = [r for r in results if r.success]
        reference = successful or results
        per_map_paths.append(float(np.mean([r.path_length_m for r in reference])))

    return RobustnessPoint(
        ber_percent=ber_percent,
        num_fault_maps=len(maps),
        episodes_per_map=episodes_per_map,
        success_rate=float(np.mean(per_map_success)),
        success_rate_std=float(np.std(per_map_success)),
        mean_path_length_m=float(np.mean(per_map_paths)),
        per_map_success_rates=tuple(per_map_success),
    )


def robustness_curve(
    env: NavigationEnv,
    network: Sequential,
    ber_percentages: Sequence[float],
    num_fault_maps: int = 10,
    episodes_per_map: int = 5,
    quantization: QuantizationConfig = QuantizationConfig(),
    rng: SeedLike = 0,
) -> Dict[float, RobustnessPoint]:
    """Success rate vs bit-error rate (the x-axis sweep of Fig. 3 / Table I)."""
    generators = spawn_generators(rng, len(ber_percentages))
    curve: Dict[float, RobustnessPoint] = {}
    for ber, generator in zip(ber_percentages, generators):
        curve[float(ber)] = evaluate_under_faults(
            env,
            network,
            ber_percent=float(ber),
            num_fault_maps=num_fault_maps,
            episodes_per_map=episodes_per_map,
            quantization=quantization,
            rng=generator,
        )
    return curve
