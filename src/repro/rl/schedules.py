"""Exploration-rate schedules for epsilon-greedy action selection."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Schedule:
    """Maps a global step index to a value (exploration rate)."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError(f"step must be non-negative, got {step}")
        return self.value(step)


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """A constant value for every step."""

    constant: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.constant <= 1.0:
            raise ConfigurationError(f"constant must be in [0, 1], got {self.constant}")

    def value(self, step: int) -> float:
        return self.constant


@dataclass(frozen=True)
class LinearDecay(Schedule):
    """Linear interpolation from ``start`` to ``end`` over ``decay_steps`` steps."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 5000

    def __post_init__(self) -> None:
        for name, value in (("start", self.start), ("end", self.end)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.decay_steps <= 0:
            raise ConfigurationError(f"decay_steps must be positive, got {self.decay_steps}")

    def value(self, step: int) -> float:
        fraction = min(1.0, step / self.decay_steps)
        return self.start + fraction * (self.end - self.start)


@dataclass(frozen=True)
class ExponentialDecay(Schedule):
    """Exponential decay from ``start`` towards ``end`` with time constant ``decay_steps``."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 2000

    def __post_init__(self) -> None:
        for name, value in (("start", self.start), ("end", self.end)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.decay_steps <= 0:
            raise ConfigurationError(f"decay_steps must be positive, got {self.decay_steps}")

    def value(self, step: int) -> float:
        return self.end + (self.start - self.end) * math.exp(-step / self.decay_steps)
