"""Exploration-rate schedules for epsilon-greedy action selection."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class Schedule:
    """Maps a global step index to a value (exploration rate).

    Schedules are always indexed by the *global transition count*: a B-lane
    lockstep training step assigns indices ``t, t+1, ..., t+B-1`` to its B
    simultaneous transitions, so a batched run and a serial run see the same
    exploration rate at the same ``total_steps`` (see :meth:`values`).
    """

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError(f"step must be non-negative, got {step}")
        return self.value(step)

    def values(self, steps: np.ndarray) -> np.ndarray:
        """Vectorised evaluation at an array of global step indices.

        Elementwise-identical to calling the schedule per step (subclasses
        overriding this keep that contract — it is what makes batched
        exploration reproduce the serial schedule exactly).
        """
        steps = np.asarray(steps, dtype=np.int64)
        if steps.size and int(steps.min()) < 0:
            raise ConfigurationError("steps must be non-negative")
        return np.asarray([self.value(int(step)) for step in steps], dtype=np.float64)


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """A constant value for every step."""

    constant: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.constant <= 1.0:
            raise ConfigurationError(f"constant must be in [0, 1], got {self.constant}")

    def value(self, step: int) -> float:
        return self.constant


@dataclass(frozen=True)
class LinearDecay(Schedule):
    """Linear interpolation from ``start`` to ``end`` over ``decay_steps`` steps."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 5000

    def __post_init__(self) -> None:
        for name, value in (("start", self.start), ("end", self.end)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.decay_steps <= 0:
            raise ConfigurationError(f"decay_steps must be positive, got {self.decay_steps}")

    def value(self, step: int) -> float:
        fraction = min(1.0, step / self.decay_steps)
        return self.start + fraction * (self.end - self.start)

    def values(self, steps: np.ndarray) -> np.ndarray:
        steps = np.asarray(steps, dtype=np.int64)
        if steps.size and int(steps.min()) < 0:
            raise ConfigurationError("steps must be non-negative")
        fraction = np.minimum(1.0, steps / self.decay_steps)
        return self.start + fraction * (self.end - self.start)


@dataclass(frozen=True)
class ExponentialDecay(Schedule):
    """Exponential decay from ``start`` towards ``end`` with time constant ``decay_steps``."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 2000

    def __post_init__(self) -> None:
        for name, value in (("start", self.start), ("end", self.end)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.decay_steps <= 0:
            raise ConfigurationError(f"decay_steps must be positive, got {self.decay_steps}")

    def value(self, step: int) -> float:
        return self.end + (self.start - self.end) * math.exp(-step / self.decay_steps)
