"""Experience replay buffer.

Algorithm 1 (line 8-10) stores every transition ``(s_t, a_t, r_t, s_{t+1})``
in a replay memory ``D`` and samples uniform mini-batches from it for both the
clean and the perturbed training passes.  The buffer is a fixed-capacity ring
of pre-allocated numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Transition:
    """A mini-batch of transitions sampled from the replay buffer."""

    observations: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_observations: np.ndarray
    dones: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.actions.shape[0])


class ReplayBuffer:
    """Fixed-capacity uniform-sampling replay memory."""

    def __init__(self, capacity: int, observation_shape: Tuple[int, ...]) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        observation_shape = tuple(int(dim) for dim in observation_shape)
        if not observation_shape or any(dim <= 0 for dim in observation_shape):
            raise ConfigurationError(f"invalid observation shape {observation_shape}")
        self.capacity = capacity
        self.observation_shape = observation_shape
        self._observations = np.zeros((capacity,) + observation_shape, dtype=np.float64)
        self._next_observations = np.zeros((capacity,) + observation_shape, dtype=np.float64)
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity, dtype=np.float64)
        self._dones = np.zeros(capacity, dtype=np.float64)
        self._cursor = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def add(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
        done: bool,
    ) -> None:
        """Append one transition, overwriting the oldest entry when full."""
        observation = np.asarray(observation, dtype=np.float64)
        next_observation = np.asarray(next_observation, dtype=np.float64)
        if observation.shape != self.observation_shape or next_observation.shape != self.observation_shape:
            raise ConfigurationError(
                f"observation shape {observation.shape} does not match buffer shape "
                f"{self.observation_shape}"
            )
        index = self._cursor
        self._observations[index] = observation
        self._next_observations[index] = next_observation
        self._actions[index] = int(action)
        self._rewards[index] = float(reward)
        self._dones[index] = 1.0 if done else 0.0
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def add_batch(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_observations: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Append N transitions at once — a vectorised ring insert.

        Equivalent to N scalar :meth:`add` calls (identical final contents,
        cursor and size, including when the batch overflows the capacity), but
        executed as at most two array slice assignments per field: one up to
        the end of the ring and one wrapped around to its start.
        """
        observations = np.asarray(observations, dtype=np.float64)
        next_observations = np.asarray(next_observations, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.int64).reshape(-1)
        rewards = np.asarray(rewards, dtype=np.float64).reshape(-1)
        dones = np.asarray(dones, dtype=np.float64).reshape(-1)
        count = actions.shape[0]
        expected = (count,) + self.observation_shape
        if observations.shape != expected or next_observations.shape != expected:
            raise ConfigurationError(
                f"batch observation shape {observations.shape} does not match "
                f"{expected} for {count} transitions"
            )
        if rewards.shape[0] != count or dones.shape[0] != count:
            raise ConfigurationError(
                f"got {rewards.shape[0]} rewards and {dones.shape[0]} dones "
                f"for {count} actions"
            )
        if count == 0:
            return
        if count > self.capacity:
            # Only the last `capacity` transitions survive a scalar loop; the
            # skipped prefix still advances the cursor.
            skip = count - self.capacity
            observations = observations[skip:]
            next_observations = next_observations[skip:]
            actions = actions[skip:]
            rewards = rewards[skip:]
            dones = dones[skip:]
            self._cursor = (self._cursor + skip) % self.capacity
            count = self.capacity
        start = self._cursor
        first = min(count, self.capacity - start)
        head = slice(start, start + first)
        self._observations[head] = observations[:first]
        self._next_observations[head] = next_observations[:first]
        self._actions[head] = actions[:first]
        self._rewards[head] = rewards[:first]
        self._dones[head] = dones[:first]
        wrapped = count - first
        if wrapped:
            self._observations[:wrapped] = observations[first:]
            self._next_observations[:wrapped] = next_observations[first:]
            self._actions[:wrapped] = actions[first:]
            self._rewards[:wrapped] = rewards[first:]
            self._dones[:wrapped] = dones[first:]
        self._cursor = (start + count) % self.capacity
        self._size = min(self._size + count, self.capacity)

    def sample(self, batch_size: int, rng: SeedLike = None) -> Transition:
        """Sample a uniform mini-batch (with replacement across calls, without within a call)."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if self._size == 0:
            raise ConfigurationError("cannot sample from an empty replay buffer")
        generator = as_generator(rng)
        replace = batch_size > self._size
        indices = generator.choice(self._size, size=batch_size, replace=replace)
        return Transition(
            observations=self._observations[indices].copy(),
            actions=self._actions[indices].copy(),
            rewards=self._rewards[indices].copy(),
            next_observations=self._next_observations[indices].copy(),
            dones=self._dones[indices].copy(),
        )

    def clear(self) -> None:
        self._cursor = 0
        self._size = 0
