"""Reinforcement-learning substrate: replay buffer, schedules, DQN, evaluation.

The paper's autonomy policies are Deep Q-Networks trained with experience
replay and a periodically synchronised target network (Sec. II-A and
Algorithm 1 lines 2-13).  :class:`~repro.rl.dqn.DqnTrainer` implements that
classical baseline; the BERRY error-aware trainer in :mod:`repro.core.berry`
extends it with the perturbed gradient pass.  Experience collection runs on
``config.train_lanes`` lockstep batched environment lanes
(:mod:`repro.rl.collect`); one lane reproduces the serial loop bitwise.
"""

from repro.rl.replay_buffer import ReplayBuffer, Transition
from repro.rl.schedules import ConstantSchedule, ExponentialDecay, LinearDecay
from repro.rl.collect import EpisodeRecord, LockstepCollector, StepBatch
from repro.rl.dqn import DqnConfig, DqnTrainer, TrainingHistory
from repro.rl.evaluation import (
    GreedyPolicy,
    PolicyEvaluation,
    RobustnessPoint,
    evaluate_policy,
    evaluate_under_faults,
    greedy_policy,
    robustness_curve,
)

__all__ = [
    "ReplayBuffer",
    "Transition",
    "ConstantSchedule",
    "LinearDecay",
    "ExponentialDecay",
    "DqnConfig",
    "DqnTrainer",
    "TrainingHistory",
    "EpisodeRecord",
    "LockstepCollector",
    "StepBatch",
    "GreedyPolicy",
    "PolicyEvaluation",
    "RobustnessPoint",
    "evaluate_policy",
    "evaluate_under_faults",
    "greedy_policy",
    "robustness_curve",
]
