"""Lockstep B-lane experience collection for the DQN/BERRY trainers.

The training loop used to step one :class:`~repro.envs.navigation.NavigationEnv`
and one observation at a time.  :class:`LockstepCollector` replaces that inner
loop with the batched rollout core: B environment lanes advance per step, the
epsilon-greedy head runs one batched Q forward plus per-lane exploration
streams, and every lockstep step yields the whole batch of transitions for a
single vectorised :meth:`~repro.rl.replay_buffer.ReplayBuffer.add_batch` push.
A lane whose episode ends is refilled with the next pending episode (via
:class:`~repro.envs.batch.LaneEpisodeFeed`), so collection keeps full width
until the episode budget drains.

**Determinism contract.**  Exploration is indexed by the *global transition
count*: the k simultaneous transitions of one lockstep step take schedule
indices ``t, t+1, ..., t+k-1`` and each lane draws from its own stream in lane
order.  At B = 1, with the lane's environment and exploration streams shared
with the serial trainer's (``share_rng`` /
``DqnTrainer``'s own generator), the collector consumes exactly the RNG draws
of the pre-refactor scalar loop — which is what makes B=1 batched training
bitwise-equivalent to :meth:`~repro.rl.dqn.DqnTrainer.train_serial` (pinned in
``tests/test_rl_batched_training.py``).  At B > 1 each lane explores from an
independent spawned stream; results are deterministic in (seed, B) but
intentionally differ from the serial interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.envs.batch import BatchedNavigationEnv, LaneEpisodeFeed
from repro.errors import TrainingError
from repro.nn.network import Sequential
from repro.obs import get_metrics
from repro.rl.schedules import Schedule


@dataclass(frozen=True)
class EpisodeRecord:
    """Bookkeeping for one training episode completed by the collector."""

    episode: int
    total_reward: float
    success: bool
    steps: int


@dataclass(frozen=True)
class StepBatch:
    """The transitions of one lockstep collection step (k active lanes).

    Arrays are row-aligned over the lanes that actually advanced, in ascending
    lane order; ``dones`` mirrors the serial trainer's replay convention
    (``terminated`` only — a timeout is not a terminal state for bootstrapping).
    """

    observations: np.ndarray        #: (k, *obs_shape) observations acted on
    actions: np.ndarray             #: (k,) actions taken
    rewards: np.ndarray             #: (k,) per-step rewards
    next_observations: np.ndarray   #: (k, *obs_shape) successor observations
    dones: np.ndarray               #: (k,) float, 1.0 where the step terminated
    epsilons: np.ndarray            #: (k,) exploration rates used (global-count indexed)
    finished: Tuple[EpisodeRecord, ...]  #: episodes that completed this step

    @property
    def num_transitions(self) -> int:
        return int(self.actions.shape[0])


class LockstepCollector:
    """Drives B env lanes per step and yields batched transitions for training.

    The collector owns the *acting* side of the training loop: batched greedy
    forward, per-lane epsilon-greedy exploration, stepping, episode
    bookkeeping, and lane refill.  Learning cadence (replay pushes, gradient
    steps, target syncs) stays in the trainer, interleaved on the global step
    counter the trainer passes to :meth:`collect`.
    """

    def __init__(
        self,
        env: BatchedNavigationEnv,
        q_network: Sequential,
        schedule: Schedule,
        exploration_rngs: Sequence[np.random.Generator],
        num_episodes: int,
        max_steps_per_episode: Optional[int] = None,
    ) -> None:
        if num_episodes <= 0:
            raise TrainingError(f"num_episodes must be positive, got {num_episodes}")
        if len(exploration_rngs) != env.batch_size:
            raise TrainingError(
                f"got {len(exploration_rngs)} exploration streams for "
                f"{env.batch_size} lanes"
            )
        self.env = env
        self.q_network = q_network
        self.schedule = schedule
        self.exploration_rngs = list(exploration_rngs)
        if max_steps_per_episode is None:
            max_steps_per_episode = env.config.max_steps
        if max_steps_per_episode <= 0:
            raise TrainingError(
                f"max_steps_per_episode must be positive, got {max_steps_per_episode}"
            )
        self.max_steps_per_episode = int(max_steps_per_episode)
        self._feed = LaneEpisodeFeed(env, num_episodes)
        self._observations = self._feed.prime()
        self._reward_totals = np.zeros(env.batch_size, dtype=np.float64)

    @property
    def collecting(self) -> bool:
        """True while any lane still has an episode to run."""
        return self._feed.active_lanes.size > 0

    def collect(self, total_steps: int) -> StepBatch:
        """Advance every active lane by one action; return the transitions.

        ``total_steps`` is the trainer's global transition counter *before*
        this step; the k transitions produced here take schedule indices
        ``total_steps .. total_steps + k - 1`` (lane order), so exploration is
        a pure function of the global count regardless of the lane count.
        """
        active = self._feed.active_lanes
        if active.size == 0:
            raise TrainingError("collect() called with no active episodes")
        observations = self._observations[active].copy()
        epsilons = self.schedule.values(total_steps + np.arange(active.size))

        q_values = self.q_network.forward(observations)
        actions_taken = np.argmax(q_values, axis=1).astype(np.int64)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("train.env_steps").inc(active.size)
            metrics.gauge("train.epsilon").set(float(epsilons[-1]))
            metrics.histogram("train.q_max").observe(
                float(np.mean(np.max(q_values, axis=1)))
            )
        for row, lane in enumerate(active):
            stream = self.exploration_rngs[lane]
            if stream.random() < epsilons[row]:
                actions_taken[row] = self.env.action_space.sample(stream)

        actions = np.zeros(self.env.batch_size, dtype=np.int64)
        actions[active] = actions_taken
        result = self.env.step(actions)

        rewards = result.rewards[active].copy()
        next_observations = result.observations[active].copy()
        # Replay convention of the serial trainer: bootstrapping is cut only
        # by true termination (goal/collision), never by the step-budget cap.
        dones = result.terminated[active].astype(np.float64)
        self._reward_totals[active] += rewards
        self._observations[active] = next_observations

        capped = result.steps[active] >= self.max_steps_per_episode
        finished_lanes = active[result.done[active] | capped]
        finished: List[EpisodeRecord] = []
        for lane in finished_lanes:
            lane = int(lane)
            finished.append(
                EpisodeRecord(
                    episode=int(self._feed.lane_episode[lane]),
                    total_reward=float(self._reward_totals[lane]),
                    success=bool(result.success[lane]),
                    steps=int(result.steps[lane]),
                )
            )
            self._reward_totals[lane] = 0.0
        if finished_lanes.size:
            refilled, refill_obs = self._feed.refill_many(finished_lanes)
            if refilled.size:
                self._observations[refilled] = refill_obs

        return StepBatch(
            observations=observations,
            actions=actions_taken,
            rewards=rewards,
            next_observations=next_observations,
            dones=dones,
            epsilons=epsilons,
            finished=tuple(finished),
        )
