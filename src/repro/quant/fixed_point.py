"""Per-layer symmetric fixed-point quantization with rounding.

The paper (Sec. IV, "Fault injection") quantizes each layer's parameters to
8-bit fixed point with rounding before injecting bit errors, mirroring how the
accelerator stores weights in its on-chip SRAM.  The scale of each layer is
chosen from the maximum absolute value in that layer (symmetric, zero-point
free), matching the scheme used by Stutz et al. (MLSys'21) whose profiled
chips are reused here.

The scale search and rounding run on a pluggable
:class:`~repro.nn.backend.ArrayBackend` (this is the dominant cost of the
``BErr_p`` operator); the emitted :class:`~repro.quant.qtensor.QuantizedTensor`
always stores numpy ``int32`` codes regardless of backend, and the default
numpy backend is bitwise identical to the direct-numpy implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.errors import QuantizationError
from repro.nn.backend import ArrayBackend, resolve_backend
from repro.quant.qtensor import QuantizedTensor


@dataclass(frozen=True)
class QuantizationConfig:
    """Quantization settings shared by training-time injection and deployment.

    ``bits``       — word width of the stored codes (8 in the paper).
    ``per_layer``  — one scale per parameter tensor (True) or one global scale.
    ``clip_quantile`` — optional robust clipping: the scale is taken from this
    quantile of ``|w|`` instead of the maximum, which limits the damage a
    single outlier weight can do to the resolution of a whole layer.
    """

    bits: int = 8
    per_layer: bool = True
    clip_quantile: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 16:
            raise QuantizationError(f"bits must be in [2, 16], got {self.bits}")
        if not 0.0 < self.clip_quantile <= 1.0:
            raise QuantizationError(
                f"clip_quantile must be in (0, 1], got {self.clip_quantile}"
            )


def _scale_for(values, config: QuantizationConfig, backend: ArrayBackend) -> float:
    """Choose the quantization scale for one tensor (``values`` is a backend array)."""
    magnitudes = backend.abs(values)
    if backend.numel(magnitudes) == 0:
        raise QuantizationError("cannot quantize an empty array")
    if config.clip_quantile >= 1.0:
        max_abs = float(backend.max(magnitudes))
    else:
        max_abs = backend.quantile(magnitudes, config.clip_quantile)
    max_code = float(2 ** (config.bits - 1) - 1)
    if max_abs == 0.0 or not math.isfinite(max_abs) or max_abs / max_code == 0.0:
        # All-zero (or degenerate) tensors still need a valid scale; the codes
        # will all be zero so the actual value does not matter.  A subnormal
        # max_abs whose division underflows to 0.0 lands here too.
        max_abs = 1.0
    return max_abs / max_code


def _encode(values, scale: float, bits: int, backend: ArrayBackend) -> np.ndarray:
    """Round ``values / scale`` into clipped signed codes as a numpy int32 array."""
    low, high = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    codes = backend.astype(
        backend.clip(backend.round(backend.divide(values, scale)), low, high), "int32"
    )
    return backend.to_numpy(codes)


def quantize(
    values: np.ndarray,
    config: QuantizationConfig = QuantizationConfig(),
    backend: "ArrayBackend | str | None" = None,
) -> QuantizedTensor:
    """Quantize a floating-point array to signed fixed-point codes."""
    compute = resolve_backend(backend)
    values = compute.asarray(values, "float64")
    if not compute.all_finite(values):
        raise QuantizationError("cannot quantize an array containing NaN or infinity")
    scale = _scale_for(values, config, compute)
    codes = _encode(values, scale, config.bits, compute)
    return QuantizedTensor(codes=codes, scale=scale, bits=config.bits)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Reconstruct floating-point values from a quantized tensor."""
    return tensor.dequantize()


def quantization_step(
    values: np.ndarray,
    config: QuantizationConfig = QuantizationConfig(),
    backend: "ArrayBackend | str | None" = None,
) -> float:
    """The value of one least-significant bit for the given tensor."""
    compute = resolve_backend(backend)
    return _scale_for(compute.asarray(values, "float64"), config, compute)


def quantize_state_dict(
    state: Mapping[str, np.ndarray],
    config: QuantizationConfig = QuantizationConfig(),
    backend: "ArrayBackend | str | None" = None,
) -> Dict[str, QuantizedTensor]:
    """Quantize every parameter tensor of a network state dict.

    With ``per_layer=False`` a single scale derived from the concatenation of
    all parameters is used for every tensor.
    """
    compute = resolve_backend(backend)
    if config.per_layer:
        return {name: quantize(values, config, backend=compute) for name, values in state.items()}
    flat = np.concatenate([np.asarray(v, dtype=np.float64).ravel() for v in state.values()])
    scale = _scale_for(compute.asarray(flat, "float64"), config, compute)
    quantized: Dict[str, QuantizedTensor] = {}
    for name, values in state.items():
        codes = _encode(compute.asarray(values, "float64"), scale, config.bits, compute)
        quantized[name] = QuantizedTensor(codes=codes, scale=scale, bits=config.bits)
    return quantized


def dequantize_state_dict(quantized: Mapping[str, QuantizedTensor]) -> Dict[str, np.ndarray]:
    """Reconstruct a float state dict from quantized tensors."""
    return {name: tensor.dequantize() for name, tensor in quantized.items()}


def quantization_round_trip(
    state: Mapping[str, np.ndarray],
    config: QuantizationConfig = QuantizationConfig(),
    backend: "ArrayBackend | str | None" = None,
) -> Dict[str, np.ndarray]:
    """Quantize then dequantize a state dict (the error-free deployment view)."""
    return dequantize_state_dict(quantize_state_dict(state, config, backend=backend))
