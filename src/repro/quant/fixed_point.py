"""Per-layer symmetric fixed-point quantization with rounding.

The paper (Sec. IV, "Fault injection") quantizes each layer's parameters to
8-bit fixed point with rounding before injecting bit errors, mirroring how the
accelerator stores weights in its on-chip SRAM.  The scale of each layer is
chosen from the maximum absolute value in that layer (symmetric, zero-point
free), matching the scheme used by Stutz et al. (MLSys'21) whose profiled
chips are reused here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.errors import QuantizationError
from repro.quant.qtensor import QuantizedTensor


@dataclass(frozen=True)
class QuantizationConfig:
    """Quantization settings shared by training-time injection and deployment.

    ``bits``       — word width of the stored codes (8 in the paper).
    ``per_layer``  — one scale per parameter tensor (True) or one global scale.
    ``clip_quantile`` — optional robust clipping: the scale is taken from this
    quantile of ``|w|`` instead of the maximum, which limits the damage a
    single outlier weight can do to the resolution of a whole layer.
    """

    bits: int = 8
    per_layer: bool = True
    clip_quantile: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 16:
            raise QuantizationError(f"bits must be in [2, 16], got {self.bits}")
        if not 0.0 < self.clip_quantile <= 1.0:
            raise QuantizationError(
                f"clip_quantile must be in (0, 1], got {self.clip_quantile}"
            )


def _scale_for(values: np.ndarray, config: QuantizationConfig) -> float:
    """Choose the quantization scale for one tensor."""
    magnitudes = np.abs(values)
    if magnitudes.size == 0:
        raise QuantizationError("cannot quantize an empty array")
    if config.clip_quantile >= 1.0:
        max_abs = float(magnitudes.max())
    else:
        max_abs = float(np.quantile(magnitudes, config.clip_quantile))
    max_code = float(2 ** (config.bits - 1) - 1)
    if max_abs == 0.0 or not np.isfinite(max_abs) or max_abs / max_code == 0.0:
        # All-zero (or degenerate) tensors still need a valid scale; the codes
        # will all be zero so the actual value does not matter.  A subnormal
        # max_abs whose division underflows to 0.0 lands here too.
        max_abs = 1.0
    return max_abs / max_code


def quantize(values: np.ndarray, config: QuantizationConfig = QuantizationConfig()) -> QuantizedTensor:
    """Quantize a floating-point array to signed fixed-point codes."""
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(values)):
        raise QuantizationError("cannot quantize an array containing NaN or infinity")
    scale = _scale_for(values, config)
    low, high = -(2 ** (config.bits - 1)), 2 ** (config.bits - 1) - 1
    codes = np.clip(np.round(values / scale), low, high).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, bits=config.bits)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Reconstruct floating-point values from a quantized tensor."""
    return tensor.dequantize()


def quantization_step(values: np.ndarray, config: QuantizationConfig = QuantizationConfig()) -> float:
    """The value of one least-significant bit for the given tensor."""
    return _scale_for(np.asarray(values, dtype=np.float64), config)


def quantize_state_dict(
    state: Mapping[str, np.ndarray], config: QuantizationConfig = QuantizationConfig()
) -> Dict[str, QuantizedTensor]:
    """Quantize every parameter tensor of a network state dict.

    With ``per_layer=False`` a single scale derived from the concatenation of
    all parameters is used for every tensor.
    """
    if config.per_layer:
        return {name: quantize(values, config) for name, values in state.items()}
    flat = np.concatenate([np.asarray(v, dtype=np.float64).ravel() for v in state.values()])
    scale = _scale_for(flat, config)
    low, high = -(2 ** (config.bits - 1)), 2 ** (config.bits - 1) - 1
    quantized: Dict[str, QuantizedTensor] = {}
    for name, values in state.items():
        codes = np.clip(np.round(np.asarray(values, dtype=np.float64) / scale), low, high)
        quantized[name] = QuantizedTensor(codes=codes.astype(np.int32), scale=scale, bits=config.bits)
    return quantized


def dequantize_state_dict(quantized: Mapping[str, QuantizedTensor]) -> Dict[str, np.ndarray]:
    """Reconstruct a float state dict from quantized tensors."""
    return {name: tensor.dequantize() for name, tensor in quantized.items()}


def quantization_round_trip(
    state: Mapping[str, np.ndarray], config: QuantizationConfig = QuantizationConfig()
) -> Dict[str, np.ndarray]:
    """Quantize then dequantize a state dict (the error-free deployment view)."""
    return dequantize_state_dict(quantize_state_dict(state, config))
