"""Quantized tensor representation.

A :class:`QuantizedTensor` stores the integer codes produced by symmetric
fixed-point quantization together with the scale needed to reconstruct the
floating-point values.  The codes are kept as signed integers; helpers are
provided to view them as unsigned bit patterns (two's complement) because the
SRAM fault model flips physical bits of the stored words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.nn.backend import NUMPY_BACKEND


@dataclass
class QuantizedTensor:
    """Integer codes plus the scale of a symmetric fixed-point quantization."""

    codes: np.ndarray
    scale: float
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 16:
            raise QuantizationError(f"bits must be in [2, 16], got {self.bits}")
        if self.scale <= 0 or not np.isfinite(self.scale):
            raise QuantizationError(f"scale must be positive and finite, got {self.scale}")
        self.codes = np.asarray(self.codes, dtype=np.int32)
        low, high = self.code_range
        if self.codes.size and (self.codes.min() < low or self.codes.max() > high):
            raise QuantizationError(
                f"codes outside the representable range [{low}, {high}] for {self.bits} bits"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.codes.shape

    @property
    def size(self) -> int:
        return int(self.codes.size)

    @property
    def num_bits_total(self) -> int:
        """Total number of physical bits occupied by this tensor."""
        return self.size * self.bits

    @property
    def code_range(self) -> Tuple[int, int]:
        """Inclusive (min, max) representable signed code values."""
        return (-(2 ** (self.bits - 1)), 2 ** (self.bits - 1) - 1)

    def dequantize(self) -> np.ndarray:
        """Reconstruct floating-point values.

        Codes are stored as numpy ``int32`` regardless of the compute backend
        that produced them, so the reconstruction runs on the numpy backend
        (a cast plus one scalar multiply).
        """
        be = NUMPY_BACKEND
        return be.multiply(be.astype(self.codes, "float64"), self.scale)

    # ----------------------------------------------------------------- bit-level views
    def to_unsigned(self) -> np.ndarray:
        """Two's-complement view of the codes as unsigned integers in [0, 2^bits)."""
        be = NUMPY_BACKEND
        modulus = 1 << self.bits
        return be.astype(be.mod(self.codes, modulus), "int64")

    @classmethod
    def from_unsigned(cls, unsigned: np.ndarray, scale: float, bits: int) -> "QuantizedTensor":
        """Rebuild a tensor from unsigned two's-complement words."""
        be = NUMPY_BACKEND
        unsigned = be.asarray(unsigned, "int64")
        modulus = 1 << bits
        if unsigned.size and (unsigned.min() < 0 or unsigned.max() >= modulus):
            raise QuantizationError(
                f"unsigned words must be in [0, {modulus}), got range "
                f"[{unsigned.min()}, {unsigned.max()}]"
            )
        half = 1 << (bits - 1)
        signed = be.where(unsigned >= half, be.subtract(unsigned, modulus), unsigned)
        return cls(codes=be.astype(signed, "int32"), scale=scale, bits=bits)

    def to_bitplanes(self) -> np.ndarray:
        """Boolean array of shape ``codes.shape + (bits,)``, LSB first."""
        unsigned = self.to_unsigned()
        planes = np.zeros(self.codes.shape + (self.bits,), dtype=bool)
        for bit in range(self.bits):
            planes[..., bit] = (unsigned >> bit) & 1
        return planes

    @classmethod
    def from_bitplanes(cls, planes: np.ndarray, scale: float, bits: int) -> "QuantizedTensor":
        """Inverse of :meth:`to_bitplanes`."""
        planes = np.asarray(planes, dtype=bool)
        if planes.shape[-1] != bits:
            raise QuantizationError(
                f"last axis of bit planes must equal bits={bits}, got {planes.shape[-1]}"
            )
        unsigned = np.zeros(planes.shape[:-1], dtype=np.int64)
        for bit in range(bits):
            unsigned |= planes[..., bit].astype(np.int64) << bit
        return cls.from_unsigned(unsigned, scale=scale, bits=bits)

    def copy(self) -> "QuantizedTensor":
        return QuantizedTensor(codes=self.codes.copy(), scale=self.scale, bits=self.bits)

    def quantization_error(self, original: np.ndarray) -> float:
        """Maximum absolute reconstruction error against the original array."""
        return float(np.max(np.abs(self.dequantize() - np.asarray(original, dtype=np.float64))))
