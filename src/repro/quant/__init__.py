"""Fixed-point quantization of policy parameters.

On the accelerator modelled in the paper, weights and activations are stored
in on-chip SRAM as per-layer 8-bit fixed-point values; low-voltage bit errors
therefore act on the quantized integer codes, not on float32 values.  This
package provides the quantize/dequantize machinery that the fault-injection
operator (:mod:`repro.faults.injection`) is built on.
"""

from repro.quant.qtensor import QuantizedTensor
from repro.quant.fixed_point import (
    QuantizationConfig,
    dequantize,
    quantize,
    quantize_state_dict,
    dequantize_state_dict,
)

__all__ = [
    "QuantizedTensor",
    "QuantizationConfig",
    "quantize",
    "dequantize",
    "quantize_state_dict",
    "dequantize_state_dict",
]
