"""SRAM array geometry and bit-cell addressing.

The profiled chips in the paper store policy parameters in banked SRAM arrays
(the reproduced error-pattern figure shows a 125-row x 500-column section).
Fault maps address bit cells by a flat index; :class:`SramGeometry` converts
between that flat index and (bank, row, column) coordinates, which is what the
column-aligned fault pattern of Table III (Chip 2) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import FaultModelError


@dataclass(frozen=True)
class SramGeometry:
    """Banked SRAM organisation: ``banks`` arrays of ``rows`` x ``columns`` bit cells."""

    rows: int = 125
    columns: int = 500
    banks: int = 64

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0 or self.banks <= 0:
            raise FaultModelError(
                f"SRAM geometry must be positive, got rows={self.rows}, "
                f"columns={self.columns}, banks={self.banks}"
            )

    @property
    def bits_per_bank(self) -> int:
        return self.rows * self.columns

    @property
    def total_bits(self) -> int:
        return self.bits_per_bank * self.banks

    @property
    def total_bytes(self) -> int:
        return self.total_bits // 8

    # ------------------------------------------------------------------ addressing
    def decompose(self, flat_index: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Convert flat bit indices into (bank, row, column) coordinates.

        Cells are laid out row-major within a bank: consecutive flat indices
        walk along a row (column fastest), then down rows, then across banks.
        """
        flat = np.asarray(flat_index, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= self.total_bits):
            raise FaultModelError(
                f"flat index out of range [0, {self.total_bits}) for this geometry"
            )
        bank = flat // self.bits_per_bank
        within = flat % self.bits_per_bank
        row = within // self.columns
        column = within % self.columns
        return bank, row, column

    def compose(self, bank: np.ndarray, row: np.ndarray, column: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`decompose`."""
        bank = np.asarray(bank, dtype=np.int64)
        row = np.asarray(row, dtype=np.int64)
        column = np.asarray(column, dtype=np.int64)
        if np.any(bank < 0) or np.any(bank >= self.banks):
            raise FaultModelError(f"bank index out of range [0, {self.banks})")
        if np.any(row < 0) or np.any(row >= self.rows):
            raise FaultModelError(f"row index out of range [0, {self.rows})")
        if np.any(column < 0) or np.any(column >= self.columns):
            raise FaultModelError(f"column index out of range [0, {self.columns})")
        return bank * self.bits_per_bank + row * self.columns + column

    def column_cells(self, bank: int, column: int) -> np.ndarray:
        """Flat indices of every cell in one physical column of one bank."""
        rows = np.arange(self.rows, dtype=np.int64)
        return self.compose(np.full_like(rows, bank), rows, np.full_like(rows, column))

    def geometry_for_capacity(self, required_bits: int) -> "SramGeometry":
        """A geometry with at least ``required_bits`` cells, keeping the array shape.

        Weight memories of different policy sizes (C3F2 vs C5F4) need a
        different number of banks; the per-bank organisation stays the same.
        """
        if required_bits <= 0:
            raise FaultModelError(f"required_bits must be positive, got {required_bits}")
        banks = -(-required_bits // self.bits_per_bank)  # ceil division
        return SramGeometry(rows=self.rows, columns=self.columns, banks=banks)


#: Geometry matching the memory cross-section reproduced in Fig. 2 of the paper.
DEFAULT_GEOMETRY = SramGeometry()
