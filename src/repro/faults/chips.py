"""Profiled chip models used in the generalisation study (Table III).

The paper evaluates BERRY-trained policies on fault maps profiled from two
different physical chips:

* **Chip 1** — a random spatial error pattern (the same statistical family the
  policy was trained on), evaluated at p = 0.16 % and 0.74 %.
* **Chip 2** — a column-aligned error pattern with a bias towards 0->1 flips,
  evaluated at p = 0.067 % and 0.32 %.

A :class:`ChipProfile` bundles the spatial pattern, the flip-direction bias
and a per-chip scaling of the voltage->BER curve (different chips reach a
given error rate at slightly different voltages), and can produce persistent
fault maps for a weight memory of any size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import FaultModelError
from repro.faults.ber_model import DEFAULT_BER_MODEL, VoltageBerModel
from repro.faults.fault_map import FaultMap
from repro.faults.sram import SramGeometry
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ChipProfile:
    """Statistical description of one profiled chip's low-voltage fault behaviour."""

    name: str
    pattern: str = "random"  # "random" or "column_aligned"
    stuck_at_1_bias: float = 0.5
    ber_scale: float = 1.0
    geometry: SramGeometry = field(default_factory=SramGeometry)
    ber_model: VoltageBerModel = DEFAULT_BER_MODEL
    #: Representative evaluation error rates (percent), as reported in Table III.
    reference_ber_percent: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.pattern not in ("random", "column_aligned"):
            raise FaultModelError(f"unknown fault pattern {self.pattern!r}")
        if not 0.0 <= self.stuck_at_1_bias <= 1.0:
            raise FaultModelError(f"stuck_at_1_bias must be in [0, 1], got {self.stuck_at_1_bias}")
        if self.ber_scale <= 0:
            raise FaultModelError(f"ber_scale must be positive, got {self.ber_scale}")

    # ------------------------------------------------------------------ BER queries
    def ber_percent_at_voltage(self, normalized_voltage: float) -> float:
        """This chip's bit-error rate at ``V/Vmin`` (percent)."""
        return self.ber_scale * self.ber_model.ber_percent(normalized_voltage)

    def ber_fraction_at_voltage(self, normalized_voltage: float) -> float:
        return self.ber_percent_at_voltage(normalized_voltage) / 100.0

    # ------------------------------------------------------------------ fault-map sampling
    def fault_map(
        self,
        memory_bits: int,
        ber_percent: Optional[float] = None,
        normalized_voltage: Optional[float] = None,
        rng: SeedLike = None,
    ) -> FaultMap:
        """Sample a persistent fault map for this chip.

        Exactly one of ``ber_percent`` or ``normalized_voltage`` must be given.
        """
        if (ber_percent is None) == (normalized_voltage is None):
            raise FaultModelError("specify exactly one of ber_percent or normalized_voltage")
        if ber_percent is None:
            ber_percent = self.ber_percent_at_voltage(float(normalized_voltage))
        if ber_percent < 0:
            raise FaultModelError(f"ber_percent must be non-negative, got {ber_percent}")
        ber_fraction = ber_percent / 100.0
        generator = as_generator(rng)
        if self.pattern == "random":
            return FaultMap.random(
                memory_bits,
                ber_fraction,
                rng=generator,
                stuck_at_1_bias=self.stuck_at_1_bias,
                label=f"{self.name}@p={ber_percent:.4g}%",
            )
        geometry = self.geometry.geometry_for_capacity(memory_bits)
        fault_map = FaultMap.column_aligned(
            geometry,
            ber_fraction * memory_bits / geometry.total_bits,
            rng=generator,
            stuck_at_1_bias=self.stuck_at_1_bias,
            label=f"{self.name}@p={ber_percent:.4g}%",
        )
        restricted = fault_map.restrict(0, memory_bits)
        return FaultMap(
            memory_bits=memory_bits,
            indices=restricted.indices,
            kinds=restricted.kinds,
            label=fault_map.label,
            metadata=dict(fault_map.metadata),
        )


#: Chip 1 of Table III: random spatial pattern, no flip-direction bias.
CHIP_RANDOM = ChipProfile(
    name="chip1-random",
    pattern="random",
    stuck_at_1_bias=0.5,
    ber_scale=1.0,
    reference_ber_percent=(0.16, 0.74),
)

#: Chip 2 of Table III: column-aligned pattern biased towards 0->1 flips.
CHIP_COLUMN_ALIGNED = ChipProfile(
    name="chip2-column-aligned",
    pattern="column_aligned",
    stuck_at_1_bias=0.85,
    ber_scale=0.45,
    reference_ber_percent=(0.067, 0.32),
)

_CHIPS: Dict[str, ChipProfile] = {
    "chip1": CHIP_RANDOM,
    "chip1-random": CHIP_RANDOM,
    "chip2": CHIP_COLUMN_ALIGNED,
    "chip2-column-aligned": CHIP_COLUMN_ALIGNED,
}


def get_chip(name: str) -> ChipProfile:
    """Look up a profiled chip by name (``"chip1"`` or ``"chip2"``)."""
    key = name.lower()
    if key not in _CHIPS:
        raise FaultModelError(f"unknown chip {name!r}; expected one of {sorted(set(_CHIPS))}")
    return _CHIPS[key]
