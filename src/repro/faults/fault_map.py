"""Persistent fault maps over a weight memory.

A fault map records which bit cells of the on-chip weight SRAM are faulty at a
given operating voltage, and how each faulty cell misbehaves.  Low-voltage
failures are *persistent*: the same cells fail on every read/write at that
voltage, so a map is sampled once (per chip, per voltage) and then applied to
every parameter access.  Both 0->1 and 1->0 corruptions occur; following the
memory-characterisation literature the default model makes each faulty cell
stuck at a random value, which produces both flip directions depending on the
data stored.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultModelError
from repro.faults.sram import SramGeometry
from repro.nn.backend import ArrayBackend, NUMPY_BACKEND
from repro.utils.rng import SeedLike, as_generator, choice_without_replacement


class FaultKind(enum.IntEnum):
    """How a faulty bit cell corrupts the stored value."""

    FLIP = 0      #: the stored bit is inverted
    STUCK_AT_0 = 1  #: the cell always reads 0
    STUCK_AT_1 = 2  #: the cell always reads 1


@dataclass
class FaultMap:
    """A set of faulty bit cells over a memory of ``memory_bits`` cells."""

    memory_bits: int
    indices: np.ndarray
    kinds: np.ndarray
    label: str = "fault-map"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.kinds = np.asarray(self.kinds, dtype=np.int8)
        if self.memory_bits <= 0:
            raise FaultModelError(f"memory_bits must be positive, got {self.memory_bits}")
        if self.indices.shape != self.kinds.shape:
            raise FaultModelError("indices and kinds must have identical shapes")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.memory_bits:
                raise FaultModelError("fault indices must lie inside the memory")
            if len(np.unique(self.indices)) != self.indices.size:
                raise FaultModelError("fault indices must be unique")
            valid_kinds = {int(kind) for kind in FaultKind}
            if not set(np.unique(self.kinds)).issubset(valid_kinds):
                raise FaultModelError(f"kinds must be valid FaultKind values {valid_kinds}")

    # ------------------------------------------------------------------ statistics
    @property
    def num_faults(self) -> int:
        return int(self.indices.size)

    @property
    def ber_fraction(self) -> float:
        """Realised bit-error rate (fraction of cells faulty)."""
        return self.num_faults / self.memory_bits

    @property
    def ber_percent(self) -> float:
        return 100.0 * self.ber_fraction

    def kind_counts(self) -> Dict[FaultKind, int]:
        counts = {kind: 0 for kind in FaultKind}
        for kind in FaultKind:
            counts[kind] = int(np.count_nonzero(self.kinds == int(kind)))
        return counts

    # ------------------------------------------------------------------ constructors
    @classmethod
    def empty(cls, memory_bits: int, label: str = "error-free") -> "FaultMap":
        return cls(
            memory_bits=memory_bits,
            indices=np.empty(0, dtype=np.int64),
            kinds=np.empty(0, dtype=np.int8),
            label=label,
        )

    @classmethod
    def random(
        cls,
        memory_bits: int,
        ber_fraction: float,
        rng: SeedLike = None,
        stuck_at_1_bias: float = 0.5,
        flip_fraction: float = 0.0,
        label: str = "random",
    ) -> "FaultMap":
        """Uniformly random spatial fault pattern (the paper's default, Chip 1).

        ``stuck_at_1_bias`` is the probability that a (non-flip) faulty cell is
        stuck at 1 rather than 0; ``flip_fraction`` optionally makes a portion
        of the faulty cells behave as inverters instead of stuck-at cells.
        """
        if not 0.0 <= ber_fraction <= 1.0:
            raise FaultModelError(f"ber_fraction must be in [0, 1], got {ber_fraction}")
        if not 0.0 <= stuck_at_1_bias <= 1.0:
            raise FaultModelError(f"stuck_at_1_bias must be in [0, 1], got {stuck_at_1_bias}")
        if not 0.0 <= flip_fraction <= 1.0:
            raise FaultModelError(f"flip_fraction must be in [0, 1], got {flip_fraction}")
        generator = as_generator(rng)
        num_faults = int(round(ber_fraction * memory_bits))
        num_faults = min(num_faults, memory_bits)
        indices = choice_without_replacement(generator, memory_bits, num_faults)
        kinds = cls._sample_kinds(generator, num_faults, stuck_at_1_bias, flip_fraction)
        return cls(
            memory_bits=memory_bits,
            indices=indices,
            kinds=kinds,
            label=label,
            metadata={"target_ber_fraction": ber_fraction},
        )

    @classmethod
    def column_aligned(
        cls,
        geometry: SramGeometry,
        ber_fraction: float,
        rng: SeedLike = None,
        column_fill: float = 0.6,
        stuck_at_1_bias: float = 0.85,
        label: str = "column-aligned",
    ) -> "FaultMap":
        """Column-aligned fault pattern with a bias towards 0->1 flips (Chip 2).

        Faults cluster in a small set of weak physical columns: whole columns
        are selected until the target error budget is met and ``column_fill``
        of the cells in each selected column are marked faulty.
        """
        if not 0.0 <= ber_fraction <= 1.0:
            raise FaultModelError(f"ber_fraction must be in [0, 1], got {ber_fraction}")
        if not 0.0 < column_fill <= 1.0:
            raise FaultModelError(f"column_fill must be in (0, 1], got {column_fill}")
        generator = as_generator(rng)
        memory_bits = geometry.total_bits
        target_faults = int(round(ber_fraction * memory_bits))
        faults_per_column = max(1, int(round(column_fill * geometry.rows)))
        num_columns = min(
            geometry.banks * geometry.columns,
            max(0, -(-target_faults // faults_per_column)),  # ceil division
        )
        total_columns = geometry.banks * geometry.columns
        chosen_columns = choice_without_replacement(generator, total_columns, num_columns)
        indices: List[np.ndarray] = []
        remaining = target_faults
        for flat_column in chosen_columns:
            bank = int(flat_column // geometry.columns)
            column = int(flat_column % geometry.columns)
            cells = geometry.column_cells(bank, column)
            take = min(faults_per_column, remaining)
            picked = generator.permutation(cells)[:take]
            indices.append(picked)
            remaining -= take
            if remaining <= 0:
                break
        flat_indices = (
            np.unique(np.concatenate(indices)) if indices else np.empty(0, dtype=np.int64)
        )
        kinds = cls._sample_kinds(generator, flat_indices.size, stuck_at_1_bias, 0.0)
        return cls(
            memory_bits=memory_bits,
            indices=flat_indices,
            kinds=kinds,
            label=label,
            metadata={"target_ber_fraction": ber_fraction, "column_fill": column_fill},
        )

    @staticmethod
    def _sample_kinds(
        generator: np.random.Generator, count: int, stuck_at_1_bias: float, flip_fraction: float
    ) -> np.ndarray:
        kinds = np.empty(count, dtype=np.int8)
        draws = generator.random(count)
        flip_mask = draws < flip_fraction
        stuck_draws = generator.random(count)
        kinds[:] = np.where(
            stuck_draws < stuck_at_1_bias, int(FaultKind.STUCK_AT_1), int(FaultKind.STUCK_AT_0)
        )
        kinds[flip_mask] = int(FaultKind.FLIP)
        return kinds

    # ------------------------------------------------------------------ application
    def apply_to_words(
        self,
        words: np.ndarray,
        bits_per_word: int,
        bit_offset: int = 0,
        backend: Optional[ArrayBackend] = None,
    ) -> np.ndarray:
        """Corrupt a flat array of unsigned words stored at ``bit_offset`` in the memory.

        ``words`` is a flat array of unsigned integers, each occupying
        ``bits_per_word`` consecutive bit cells (LSB first).  Returns a
        corrupted copy (a ``backend`` array; numpy by default); the input is
        not modified.  Fault-cell selection stays on numpy (the map itself is
        numpy and tiny); only the word-array copy and the scatter application
        run on the backend.
        """
        if bits_per_word <= 0:
            raise FaultModelError(f"bits_per_word must be positive, got {bits_per_word}")
        be = backend if backend is not None else NUMPY_BACKEND
        words = be.array(words, "int64")
        total_bits = be.numel(words) * bits_per_word
        if bit_offset < 0 or bit_offset + total_bits > self.memory_bits:
            raise FaultModelError(
                f"word range [{bit_offset}, {bit_offset + total_bits}) does not fit in "
                f"memory of {self.memory_bits} bits"
            )
        if self.num_faults == 0 or be.numel(words) == 0:
            return words
        in_range = (self.indices >= bit_offset) & (self.indices < bit_offset + total_bits)
        if not np.any(in_range):
            return words
        local = self.indices[in_range] - bit_offset
        kinds = self.kinds[in_range]
        word_index = local // bits_per_word
        bit_position = local % bits_per_word
        masks = np.int64(1) << bit_position

        flip = kinds == int(FaultKind.FLIP)
        stuck0 = kinds == int(FaultKind.STUCK_AT_0)
        stuck1 = kinds == int(FaultKind.STUCK_AT_1)
        # The *_at scatter ops handle several faults landing in the same word.
        if np.any(flip):
            be.bitwise_xor_at(words, be.from_numpy(word_index[flip]), be.from_numpy(masks[flip]))
        if np.any(stuck0):
            be.bitwise_and_at(
                words, be.from_numpy(word_index[stuck0]), be.from_numpy(~masks[stuck0])
            )
        if np.any(stuck1):
            be.bitwise_or_at(words, be.from_numpy(word_index[stuck1]), be.from_numpy(masks[stuck1]))
        return words

    def restrict(self, bit_offset: int, num_bits: int) -> "FaultMap":
        """The sub-map covering ``[bit_offset, bit_offset + num_bits)``, re-based to 0."""
        if bit_offset < 0 or num_bits < 0 or bit_offset + num_bits > self.memory_bits:
            raise FaultModelError("restrict range must lie inside the memory")
        mask = (self.indices >= bit_offset) & (self.indices < bit_offset + num_bits)
        return FaultMap(
            memory_bits=max(num_bits, 1),
            indices=self.indices[mask] - bit_offset,
            kinds=self.kinds[mask],
            label=f"{self.label}[{bit_offset}:{bit_offset + num_bits}]",
            metadata=dict(self.metadata),
        )


class FaultMapLibrary:
    """A reproducible collection of fault maps (the paper evaluates 500 per point)."""

    def __init__(
        self,
        memory_bits: int,
        ber_fraction: float,
        count: int,
        rng: SeedLike = 0,
        pattern: str = "random",
        geometry: Optional[SramGeometry] = None,
        stuck_at_1_bias: float = 0.5,
    ) -> None:
        if count <= 0:
            raise FaultModelError(f"count must be positive, got {count}")
        if pattern not in ("random", "column_aligned"):
            raise FaultModelError(f"unknown pattern {pattern!r}")
        if pattern == "column_aligned" and geometry is None:
            geometry = SramGeometry().geometry_for_capacity(memory_bits)
        self.memory_bits = memory_bits
        self.ber_fraction = ber_fraction
        self.count = count
        self.pattern = pattern
        self.geometry = geometry
        self.stuck_at_1_bias = stuck_at_1_bias
        self._rng = as_generator(rng)
        self._maps: List[FaultMap] = []

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterable[FaultMap]:
        for index in range(self.count):
            yield self.get(index)

    def get(self, index: int) -> FaultMap:
        """Fault map ``index`` (maps are generated lazily but cached)."""
        if index < 0 or index >= self.count:
            raise IndexError(f"fault map index {index} out of range [0, {self.count})")
        while len(self._maps) <= index:
            self._maps.append(self._generate(len(self._maps)))
        return self._maps[index]

    def _generate(self, index: int) -> FaultMap:
        label = f"{self.pattern}-{index}"
        if self.pattern == "random":
            return FaultMap.random(
                self.memory_bits,
                self.ber_fraction,
                rng=self._rng,
                stuck_at_1_bias=self.stuck_at_1_bias,
                label=label,
            )
        assert self.geometry is not None
        fault_map = FaultMap.column_aligned(
            self.geometry,
            self.ber_fraction,
            rng=self._rng,
            stuck_at_1_bias=self.stuck_at_1_bias,
            label=label,
        )
        # The geometry may be larger than the weight memory; re-base to it.
        if fault_map.memory_bits != self.memory_bits:
            restricted = fault_map.restrict(0, self.memory_bits)
            restricted.memory_bits = self.memory_bits
            return restricted
        return fault_map
