"""The ``BErr_p`` operator: bit-error injection into quantized policy parameters.

Algorithm 1 (line 15) perturbs the Q-network and target-network parameters by
(i) quantizing each layer to 8-bit fixed point with rounding, (ii) flipping
the bits selected by the fault map in the stored integer codes, and
(iii) dequantizing back to floating point for the perturbed forward/backward
pass.  :class:`BitErrorInjector` implements exactly that pipeline; the memory
layout of the parameters (which bit cell holds which weight bit) is fixed by
:class:`MemoryLayout` so that a *persistent* fault map hits the same weights
every time, as it does on real silicon.

The quantization scale search and the word-level corruption — the two profiled
hot paths of the operator — run on a pluggable
:class:`~repro.nn.backend.ArrayBackend` (``backend=`` on the injector, default
the process-wide selection); flipped-bit accounting uses the backend's
vectorised ``popcount`` instead of a per-word python loop.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import FaultModelError
from repro.faults.fault_map import FaultMap
from repro.nn.backend import ArrayBackend, resolve_backend
from repro.nn.network import Sequential
from repro.obs import get_metrics, span
from repro.quant.fixed_point import QuantizationConfig, quantize
from repro.quant.qtensor import QuantizedTensor
from repro.utils.rng import SeedLike, as_generator
from repro.utils.warmcache import warm_cache


def state_fingerprint(state: Mapping[str, np.ndarray]) -> str:
    """Content hash of a parameter state dict (names, shapes, raw values)."""
    digest = hashlib.sha256()
    for name in sorted(state):
        values = np.ascontiguousarray(np.asarray(state[name], dtype=np.float64))
        digest.update(name.encode("utf-8"))
        digest.update(str(values.shape).encode("utf-8"))
        digest.update(values.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class _Segment:
    """Placement of one parameter tensor in the weight memory."""

    name: str
    bit_offset: int
    num_values: int
    shape: Tuple[int, ...]


class MemoryLayout:
    """Sequential placement of named parameter tensors in a flat weight memory."""

    def __init__(self, shapes: Mapping[str, Tuple[int, ...]], bits_per_value: int = 8) -> None:
        if bits_per_value <= 0:
            raise FaultModelError(f"bits_per_value must be positive, got {bits_per_value}")
        self.bits_per_value = bits_per_value
        self._segments: Dict[str, _Segment] = {}
        offset = 0
        for name, shape in shapes.items():
            num_values = int(np.prod(shape)) if shape else 1
            self._segments[name] = _Segment(
                name=name, bit_offset=offset, num_values=num_values, shape=tuple(shape)
            )
            offset += num_values * bits_per_value
        self.total_bits = offset
        if self.total_bits == 0:
            raise FaultModelError("memory layout contains no parameters")

    @classmethod
    def from_network(cls, network: Sequential, bits_per_value: int = 8) -> "MemoryLayout":
        shapes = {name: param.shape for name, param in network.named_parameters().items()}
        return cls(shapes, bits_per_value=bits_per_value)

    @classmethod
    def from_state_dict(
        cls, state: Mapping[str, np.ndarray], bits_per_value: int = 8
    ) -> "MemoryLayout":
        return cls({name: np.asarray(v).shape for name, v in state.items()}, bits_per_value)

    def segment(self, name: str) -> _Segment:
        if name not in self._segments:
            raise KeyError(f"parameter {name!r} not present in the memory layout")
        return self._segments[name]

    def segments(self) -> Dict[str, _Segment]:
        return dict(self._segments)

    @property
    def total_bytes(self) -> int:
        return (self.total_bits + 7) // 8


class BitErrorInjector:
    """Applies a persistent fault map to a network's quantized parameters."""

    def __init__(
        self,
        layout: MemoryLayout,
        quantization: QuantizationConfig = QuantizationConfig(),
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        if layout.bits_per_value != quantization.bits:
            raise FaultModelError(
                f"memory layout uses {layout.bits_per_value}-bit words but quantization "
                f"is configured for {quantization.bits} bits"
            )
        self.layout = layout
        self.quantization = quantization
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------ construction helpers
    @classmethod
    def for_network(
        cls,
        network: Sequential,
        quantization: QuantizationConfig = QuantizationConfig(),
        backend: "ArrayBackend | str | None" = None,
    ) -> "BitErrorInjector":
        """Injector for ``network``, sharing its compute backend unless overridden."""
        compute = network.backend if backend is None else resolve_backend(backend)
        return cls(MemoryLayout.from_network(network, quantization.bits), quantization, compute)

    @property
    def memory_bits(self) -> int:
        return self.layout.total_bits

    # ------------------------------------------------------------------ core operator
    def quantize_state(
        self, state: Mapping[str, np.ndarray]
    ) -> Dict[str, QuantizedTensor]:
        """Quantize every tensor of ``state`` once, for repeated corruption.

        The fault-map evaluation protocol corrupts the *same* deployed
        parameters under hundreds of maps; quantization (per-tensor scale
        search plus rounding) is by far the most expensive part of the
        ``BErr_p`` operator, so it is hoisted here and
        :meth:`perturb_quantized_state` then corrupts per-map views of the
        stored integer codes.
        """
        quantized: Dict[str, QuantizedTensor] = {}
        for name, values in state.items():
            self.layout.segment(name)  # validate the tensor has a placement
            quantized[name] = quantize(
                np.asarray(values, dtype=np.float64), self.quantization, backend=self.backend
            )
        return quantized

    def quantize_state_cached(
        self, state: Mapping[str, np.ndarray]
    ) -> Dict[str, QuantizedTensor]:
        """Like :meth:`quantize_state`, but warm-cached by parameter content.

        Fused sweep jobs and warm pool workers evaluate the *same* trained
        policy at several BER levels (one :func:`evaluate_under_faults` call
        each); keying the quantized codes by a content hash of the raw
        parameters + quantization config + backend lets every call after the
        first skip the per-tensor scale search entirely.  Safe because
        :meth:`perturb_quantized_state` never mutates its input — a single
        quantized state legitimately serves any number of fault maps, and by
        the same invariant, any number of callers.
        """
        key = (
            state_fingerprint(state),
            self.quantization,
            self.backend.metric_tag,
        )
        return warm_cache("quantized_states", capacity=16).get_or_build(
            key, lambda: self.quantize_state(state)
        )

    def perturb_quantized_state(
        self, quantized: Mapping[str, QuantizedTensor], fault_map: FaultMap
    ) -> Dict[str, np.ndarray]:
        """Corrupt an already-quantized state under one fault map and dequantize.

        ``quantized`` is never modified; each call produces an independent
        dequantized view, so one :meth:`quantize_state` result serves any
        number of fault maps.
        """
        if fault_map.memory_bits < self.layout.total_bits:
            raise FaultModelError(
                f"fault map covers {fault_map.memory_bits} bits but the parameters occupy "
                f"{self.layout.total_bits} bits"
            )
        be = self.backend
        metrics = get_metrics()
        started = time.perf_counter() if metrics.enabled else 0.0
        flipped = 0
        perturbed: Dict[str, np.ndarray] = {}
        with span("faults.corrupt"):
            for name, tensor in quantized.items():
                segment = self.layout.segment(name)
                corrupted = self._corrupt_tensor(tensor, fault_map, segment.bit_offset)
                if metrics.enabled:
                    flipped += be.popcount(
                        be.bitwise_xor(
                            be.from_numpy(tensor.to_unsigned().ravel()),
                            be.from_numpy(corrupted.to_unsigned().ravel()),
                        )
                    )
                perturbed[name] = corrupted.dequantize().reshape(segment.shape)
        if metrics.enabled:
            metrics.counter("faults.maps_applied").inc()
            metrics.counter("faults.bits_flipped").inc(flipped)
            metrics.histogram("faults.corrupt_s").observe(time.perf_counter() - started)
        return perturbed

    def perturb_state_dict(
        self, state: Mapping[str, np.ndarray], fault_map: FaultMap
    ) -> Dict[str, np.ndarray]:
        """Return the dequantized view of ``state`` after bit errors are applied.

        Every tensor is quantized (so even fault-free parameters go through the
        8-bit rounding the deployed accelerator imposes), corrupted according
        to the fault map at its memory location, and dequantized.
        """
        return self.perturb_quantized_state(self.quantize_state(state), fault_map)

    def perturb_network(self, network: Sequential, fault_map: FaultMap) -> Sequential:
        """Clone ``network`` and load the bit-error-perturbed parameters into the clone."""
        clone = network.clone()
        clone.load_state_dict(self.perturb_state_dict(network.state_dict(), fault_map))
        return clone

    def quantize_only(self, state: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """The error-free deployment view: quantize and dequantize without faults."""
        empty = FaultMap.empty(self.layout.total_bits)
        return self.perturb_state_dict(state, empty)

    def _corrupt_tensor(
        self, tensor: QuantizedTensor, fault_map: FaultMap, bit_offset: int
    ) -> QuantizedTensor:
        words = tensor.to_unsigned().ravel()
        corrupted = fault_map.apply_to_words(
            words, tensor.bits, bit_offset, backend=self.backend
        )
        return QuantizedTensor.from_unsigned(
            self.backend.to_numpy(corrupted).reshape(tensor.shape),
            scale=tensor.scale,
            bits=tensor.bits,
        )

    # ------------------------------------------------------------------ measurement helpers
    def count_flipped_bits(
        self, state: Mapping[str, np.ndarray], fault_map: FaultMap
    ) -> int:
        """Number of stored bits that actually change value under the fault map.

        Stuck-at faults only corrupt a bit when the stored value differs from
        the stuck value, so this is typically about half of ``num_faults``.
        """
        be = self.backend
        flipped = 0
        for name, values in state.items():
            segment = self.layout.segment(name)
            tensor = quantize(
                np.asarray(values, dtype=np.float64), self.quantization, backend=be
            )
            words = tensor.to_unsigned().ravel()
            corrupted = fault_map.apply_to_words(
                words, tensor.bits, segment.bit_offset, backend=be
            )
            difference = be.bitwise_xor(be.from_numpy(words), corrupted)
            flipped += be.popcount(difference)
        return flipped


def inject_bit_errors(
    network: Sequential,
    ber_fraction: float,
    rng: SeedLike = None,
    quantization: QuantizationConfig = QuantizationConfig(),
    stuck_at_1_bias: float = 0.5,
) -> Dict[str, np.ndarray]:
    """One-shot ``BErr_p``: sample a fresh random fault map and perturb ``network``.

    This is the operator used during *offline* BERRY training, where a new
    random fault realisation is drawn at every injection so the learned policy
    generalises across chips rather than memorising one map.
    """
    injector = BitErrorInjector.for_network(network, quantization)
    fault_map = FaultMap.random(
        injector.memory_bits,
        ber_fraction,
        rng=as_generator(rng),
        stuck_at_1_bias=stuck_at_1_bias,
        label="offline-injection",
    )
    return injector.perturb_state_dict(network.state_dict(), fault_map)
