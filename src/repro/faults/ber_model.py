"""Voltage to bit-error-rate calibration.

Fig. 2 of the paper shows the measured relationship between normalized supply
voltage (in units of ``Vmin``, the lowest voltage with zero observed errors)
and the SRAM bit-error rate for a 14 nm FinFET chip; Table II tabulates the
exact (voltage, p) operating points used throughout the evaluation.  The model
here interpolates those published points log-linearly and extrapolates with
the boundary slopes, which reproduces the super-exponential growth of the
error rate as the voltage approaches the near-threshold region.

Voltages are always expressed normalized to ``Vmin`` unless a function name
says otherwise; :mod:`repro.hardware.dvfs` owns the conversion to volts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import FaultModelError

#: (normalized voltage V/Vmin, bit error rate in percent) — Table II of the paper.
TABLE_II_CALIBRATION: Tuple[Tuple[float, float], ...] = (
    (0.64, 20.36),
    (0.68, 5.80),
    (0.71, 1.11),
    (0.73, 4.98e-1),
    (0.74, 2.03e-1),
    (0.76, 7.49e-2),
    (0.77, 2.47e-2),
    (0.79, 7.25e-3),
    (0.80, 1.87e-3),
    (0.81, 4.22e-4),
    (0.83, 8.23e-5),
    (0.84, 1.38e-5),
    (0.86, 1.96e-6),
)


@dataclass(frozen=True)
class VoltageBerModel:
    """Piecewise log-linear interpolation of a measured voltage/BER curve.

    ``calibration`` holds (normalized voltage, BER percent) pairs sorted by
    voltage.  Above ``zero_error_voltage`` (the definition of ``Vmin`` is the
    lowest voltage with no errors, i.e. 1.0) the error rate is exactly zero.
    """

    calibration: Tuple[Tuple[float, float], ...] = TABLE_II_CALIBRATION
    zero_error_voltage: float = 1.0

    def __post_init__(self) -> None:
        if len(self.calibration) < 2:
            raise FaultModelError("calibration needs at least two (voltage, ber) points")
        voltages = [v for v, _ in self.calibration]
        rates = [p for _, p in self.calibration]
        if sorted(voltages) != list(voltages):
            raise FaultModelError("calibration voltages must be sorted ascending")
        if any(p <= 0 for p in rates):
            raise FaultModelError("calibration BER values must be positive (percent)")
        if any(rates[i] <= rates[i + 1] for i in range(len(rates) - 1)):
            raise FaultModelError("calibration BER must strictly decrease with voltage")
        if self.zero_error_voltage <= voltages[-1]:
            raise FaultModelError(
                "zero_error_voltage must be above the highest calibrated voltage"
            )

    # ------------------------------------------------------------------ helpers
    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        voltages = np.array([v for v, _ in self.calibration], dtype=np.float64)
        log_rates = np.log10(np.array([p for _, p in self.calibration], dtype=np.float64))
        return voltages, log_rates

    # ------------------------------------------------------------------ queries
    def ber_percent(self, normalized_voltage: float) -> float:
        """Bit-error rate (percent of bit cells faulty) at ``V/Vmin``."""
        if normalized_voltage <= 0:
            raise FaultModelError(f"normalized voltage must be positive, got {normalized_voltage}")
        if normalized_voltage >= self.zero_error_voltage:
            return 0.0
        voltages, log_rates = self._arrays()
        if normalized_voltage <= voltages[0]:
            slope = (log_rates[1] - log_rates[0]) / (voltages[1] - voltages[0])
            value = log_rates[0] + slope * (normalized_voltage - voltages[0])
        elif normalized_voltage >= voltages[-1]:
            slope = (log_rates[-1] - log_rates[-2]) / (voltages[-1] - voltages[-2])
            value = log_rates[-1] + slope * (normalized_voltage - voltages[-1])
        else:
            value = float(np.interp(normalized_voltage, voltages, log_rates))
        return float(10.0**value)

    def ber_fraction(self, normalized_voltage: float) -> float:
        """Bit-error rate as a fraction in [0, 1]."""
        return self.ber_percent(normalized_voltage) / 100.0

    def voltage_for_ber(self, ber_percent: float) -> float:
        """The normalized voltage at which the chip exhibits ``ber_percent`` errors."""
        if ber_percent < 0:
            raise FaultModelError(f"BER must be non-negative, got {ber_percent}")
        if ber_percent == 0.0:
            return self.zero_error_voltage
        voltages, log_rates = self._arrays()
        target = np.log10(ber_percent)
        # log_rates decreases with voltage; reverse both for np.interp.
        reversed_rates = log_rates[::-1]
        reversed_voltages = voltages[::-1]
        if target <= reversed_rates[0]:
            slope = (reversed_voltages[1] - reversed_voltages[0]) / (
                reversed_rates[1] - reversed_rates[0]
            )
            return float(reversed_voltages[0] + slope * (target - reversed_rates[0]))
        if target >= reversed_rates[-1]:
            slope = (reversed_voltages[-1] - reversed_voltages[-2]) / (
                reversed_rates[-1] - reversed_rates[-2]
            )
            return float(reversed_voltages[-1] + slope * (target - reversed_rates[-1]))
        return float(np.interp(target, reversed_rates, reversed_voltages))

    def sweep(self, voltages: Sequence[float]) -> list[Tuple[float, float]]:
        """Evaluate the curve at many voltages, returning (voltage, BER percent) pairs."""
        return [(float(v), self.ber_percent(float(v))) for v in voltages]


#: Model calibrated against the chip the paper evaluates (Chandramoorthy HPCA'19).
DEFAULT_BER_MODEL = VoltageBerModel()
