"""Low-voltage SRAM bit-error models: BER curves, fault maps, injection.

This package models the physical substrate of the paper's problem: when the
accelerator's supply voltage drops below the safe minimum ``Vmin``, individual
SRAM bit cells holding the quantized policy parameters fail persistently.
The failure locations are random but fixed per chip/voltage, and both 0->1 and
1->0 corruptions occur.

* :mod:`repro.faults.ber_model`   — voltage -> bit-error-rate calibration (Fig. 2 / Table II)
* :mod:`repro.faults.sram`        — SRAM array geometry and bit-cell addressing
* :mod:`repro.faults.fault_map`   — persistent fault maps (random / column-aligned patterns)
* :mod:`repro.faults.injection`   — the ``BErr_p`` operator applied to quantized parameters
* :mod:`repro.faults.chips`       — profiled chips used in Table III
"""

from repro.faults.ber_model import VoltageBerModel, DEFAULT_BER_MODEL
from repro.faults.sram import SramGeometry
from repro.faults.fault_map import FaultKind, FaultMap, FaultMapLibrary
from repro.faults.injection import BitErrorInjector, MemoryLayout, inject_bit_errors
from repro.faults.chips import ChipProfile, CHIP_RANDOM, CHIP_COLUMN_ALIGNED, get_chip

__all__ = [
    "VoltageBerModel",
    "DEFAULT_BER_MODEL",
    "SramGeometry",
    "FaultKind",
    "FaultMap",
    "FaultMapLibrary",
    "BitErrorInjector",
    "MemoryLayout",
    "inject_bit_errors",
    "ChipProfile",
    "CHIP_RANDOM",
    "CHIP_COLUMN_ALIGNED",
    "get_chip",
]
