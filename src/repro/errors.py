"""Exception hierarchy used across the BERRY reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class ShapeError(ReproError):
    """A tensor/array did not have the shape a layer or model expected."""


class BackendError(ReproError):
    """A compute backend was unknown, unavailable or used inconsistently."""


class QuantizationError(ReproError):
    """Quantization or dequantization was asked to do something impossible."""


class FaultModelError(ReproError):
    """A fault map, BER curve or chip profile was used outside its domain."""


class EnvironmentError_(ReproError):
    """A navigation environment was driven through an invalid transition."""


class TrainingError(ReproError):
    """A training loop was configured or stepped inconsistently."""
