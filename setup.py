"""Package metadata for the BERRY reproduction.

Kept as a plain ``setup.py`` so legacy editable installs (no ``wheel``
package present) keep working in minimal containers.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "version.py"), encoding="utf-8") as handle:
        match = re.search(r'__version__\s*=\s*"([^"]+)"', handle.read())
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/version.py")
    return match.group(1)


def read_long_description() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    readme = os.path.join(here, "README.md")
    if not os.path.exists(readme):
        return ""
    with open(readme, encoding="utf-8") as handle:
        return handle.read()


setup(
    name="berry-repro",
    version=read_version(),
    description=(
        "Reproduction of BERRY: bit-error-robust UAV autonomy under aggressive "
        "SRAM voltage scaling, with a parallel sweep-execution runtime"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"],
        # Optional compute backend (repro.nn.backend): lazily imported, the
        # numpy-only install never pays for it.
        "torch": ["torch>=2"],
    },
    entry_points={
        "console_scripts": [
            "repro-runtime = repro.runtime.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering",
    ],
)
