"""Benchmark: regenerate Table I — success rate under bit errors, Classical vs BERRY.

The default run regenerates the paper-scale table from the calibrated curves.
Setting the environment variable ``BERRY_BENCH_TRAINED=1`` additionally trains
reduced-scale policies and measures their robustness under injected bit errors
(tens of seconds), demonstrating the same ordering end-to-end.
"""

import os

from repro.experiments.table1 import generate_table1_robustness, measure_table1_with_training


def test_bench_table1_robustness(benchmark, print_table):
    table = benchmark(generate_table1_robustness)
    print_table(table)
    classical, berry = table.rows
    assert berry["p=1%"] > classical["p=1%"] + 30.0
    assert abs(berry["error_free_pct"] - classical["error_free_pct"]) < 2.0


def test_bench_table1_measured_with_training(benchmark, print_table):
    if os.environ.get("BERRY_BENCH_TRAINED") != "1":
        import pytest

        pytest.skip("set BERRY_BENCH_TRAINED=1 to run the trained-policy variant")
    table = benchmark.pedantic(
        measure_table1_with_training, kwargs={"ber_levels": (1.0,)}, iterations=1, rounds=1
    )
    print_table(table)
    classical = next(row for row in table.rows if row["scheme"] == "classical")
    berry = next(row for row in table.rows if row["scheme"] == "berry")
    assert berry["p=1%"] >= classical["p=1%"]
