"""Benchmark: regenerate Fig. 5 — effectiveness across obstacle-density environments."""

from repro.experiments.fig5 import generate_fig5_environments


def test_bench_fig5_environments(benchmark, print_table):
    table = benchmark(generate_fig5_environments)
    print_table(table)
    berry = {row["environment"]: row for row in table.rows if row["scheme"] == "berry"}
    classical = {row["environment"]: row for row in table.rows if row["scheme"] == "classical"}
    for environment in berry:
        assert berry[environment]["success_at_p0.1_pct"] > classical[environment]["success_at_p0.1_pct"]
        assert berry[environment]["flight_energy_change_pct"] < 0.0
        assert berry[environment]["missions_change_pct"] > 0.0
    # Mission energy grows with environment difficulty (38 J / 53 J / 77 J shape at 1 V).
    assert (
        berry["sparse"]["flight_energy_j"]
        < berry["medium"]["flight_energy_j"]
        < berry["dense"]["flight_energy_j"]
    )
