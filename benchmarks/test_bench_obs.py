"""Benchmark: observability overhead on the batched training hot path.

The instrumented layers (`repro.envs.batch`, `repro.rl.collect`,
`repro.rl.dqn`) call into :mod:`repro.obs` once or twice per *lockstep step*
— not per transition — so the cost to bound is a handful of
``get_metrics()``/``span()`` calls against a step that does a batched Q
forward, a batched environment step and a replay insert for B = 64 lanes.

Two gates, both on the B = 64 collection cadence of
``test_bench_training.py``:

* **Disabled < 1%.**  The no-op fast path is measured directly (per-call
  cost of the shared no-op instruments and spans) and extrapolated against
  the measured lockstep-step time with a deliberately inflated call budget.
  This stays deterministic where an end-to-end A/B comparison at 1%
  resolution would be pure timing noise.
* **Enabled < 5%.**  End-to-end env-steps/sec with metrics *and* tracing
  enabled versus disabled, best-of-N on both sides to squeeze out scheduler
  noise.
"""

import time

import pytest

from repro.envs.navigation import NavigationEnv
from repro.envs.obstacles import ObstacleDensity
from repro.experiments.profiles import FAST_PROFILE
from repro.nn.policies import mlp
from repro.obs import (
    collecting_metrics,
    collecting_trace,
    disable_metrics,
    disable_tracing,
    get_metrics,
    span,
)
from repro.rl.dqn import DqnConfig, DqnTrainer
from repro.rl.schedules import LinearDecay

#: Lane count of the gates (the rollout core's default width).
GATE_LANES = 64

#: No-op operations budgeted per lockstep step in the disabled-path gate.
#: The real count is ~6 (two get_metrics + enabled reads, two spans, an
#: occasional gradient-step span/counter); 32 leaves a 5x safety margin.
NOOP_OPS_PER_STEP = 32


@pytest.fixture(autouse=True)
def _observability_disabled():
    disable_metrics()
    disable_tracing()
    yield
    disable_metrics()
    disable_tracing()


def _config(train_lanes: int) -> DqnConfig:
    # The collection-bound B=64 cadence of test_bench_training.py.
    return DqnConfig(
        batch_size=16,
        buffer_capacity=8000,
        learning_starts=128,
        train_frequency=8,
        target_update_interval=250,
        epsilon_schedule=LinearDecay(start=1.0, end=0.05, decay_steps=1500),
        train_lanes=train_lanes,
    )


def _trainer(train_lanes: int = GATE_LANES) -> DqnTrainer:
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity.SPARSE)
    return DqnTrainer(
        NavigationEnv(config, rng=5),
        policy_spec=mlp((32, 32)),
        config=_config(train_lanes),
        rng=9,
    )


def _timed_training(episodes: int):
    """(env-steps/sec, seconds per lockstep step) for one training run."""
    trainer = _trainer()
    start = time.perf_counter()
    trainer.train(episodes)
    elapsed = time.perf_counter() - start
    total_steps = trainer.history.total_steps
    assert total_steps > 0
    # Lockstep steps advance up to B lanes at once; approximate their count
    # from the transition total (exact enough for an overhead bound).
    lockstep_steps = max(total_steps / GATE_LANES, 1.0)
    return total_steps / elapsed, elapsed / lockstep_steps


def _noop_op_cost_s(iterations: int = 50_000) -> float:
    """Per-operation cost of the disabled fast path (the worst no-op op)."""
    metrics = get_metrics()
    assert not metrics.enabled
    start = time.perf_counter()
    for _ in range(iterations):
        get_metrics().counter("bench.noop").inc()
    counter_s = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop"):
            pass
    span_s = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        get_metrics().histogram("bench.noop").observe(1.0)
    histogram_s = (time.perf_counter() - start) / iterations
    return max(counter_s, span_s, histogram_s)


def test_disabled_overhead_below_1pct():
    """Gate: the no-op fast path costs < 1% of a B=64 lockstep step."""
    op_s = min(_noop_op_cost_s() for _ in range(3))
    _, step_s = _timed_training(episodes=96)
    overhead = NOOP_OPS_PER_STEP * op_s / step_s
    print(
        f"\nno-op op {op_s * 1e9:.0f}ns x {NOOP_OPS_PER_STEP} budgeted ops vs "
        f"{step_s * 1e6:.0f}us lockstep step -> {100 * overhead:.3f}% overhead"
    )
    assert overhead < 0.01


def test_enabled_overhead_below_5pct():
    """Gate: metrics + tracing enabled costs < 5% env-steps/sec at B=64.

    Disabled and enabled runs are *interleaved* and compared best-of-N so a
    load spike or thermal drift during the gate hits both sides alike instead
    of masquerading as instrumentation overhead.
    """
    episodes = 384
    ratios = []
    for _ in range(5):
        disabled, _ = _timed_training(episodes)
        with collecting_metrics() as registry, collecting_trace():
            enabled, _ = _timed_training(episodes)
        # The run must actually have recorded through the instrumented layers.
        snapshot = registry.snapshot()
        assert snapshot["counters"]["train.env_steps"] > 0
        assert snapshot["counters"]["env.steps"] > 0
        ratios.append(enabled / disabled)
    # Real instrumentation overhead slows *every* pair; a noise spike only
    # some, so the cleanest pair is the sound upper bound on the true cost.
    best = max(ratios)
    print(
        f"\nenabled/disabled ratios {['%.3f' % r for r in ratios]} "
        f"-> best pair {100 * (1 - best):.2f}% overhead"
    )
    assert best >= 0.95


def test_ledger_write_overhead_below_1pct(tmp_path):
    """Gate: appending one run-ledger record costs < 1% of a B=64 sweep.

    The engine writes exactly one record per ``SweepRunner.run``; the sweep
    here is one B=64 training job (the cheapest realistic run), so bounding
    record-append time against that single job's wall time is the worst case
    — real multi-job sweeps amortise the one write further.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.store import RunLedger

    # A realistic record payload: the full metrics snapshot of one observed
    # training run plus typical counts/fingerprint, not a toy dict.
    with collecting_metrics() as registry, collecting_trace():
        trainer = _trainer()
        start = time.perf_counter()
        trainer.train(96)
        sweep_s = time.perf_counter() - start
    snapshot = registry.snapshot()
    assert isinstance(registry, MetricsRegistry)

    ledger = RunLedger(tmp_path / "ledger.jsonl")
    appends = 20
    times = []
    for index in range(appends):
        start = time.perf_counter()
        ledger.record_run(
            kind="sweep",
            name="bench-ledger-overhead",
            spec_hash=f"hash{index}",
            wall_time_s=sweep_s,
            counts={"jobs": 1, "executed": 1},
            metrics=snapshot,
        )
        times.append(time.perf_counter() - start)
    # The gate bounds the *intrinsic* append cost: a GC pause or fsync spike
    # inflates individual appends, so the cleanest one is the sound estimate.
    append_s = min(times)
    overhead = append_s / sweep_s
    print(
        f"\nledger append {append_s * 1e6:.0f}us vs {sweep_s:.3f}s B={GATE_LANES} "
        f"sweep -> {100 * overhead:.4f}% overhead"
    )
    assert len(ledger.records()) == appends
    assert overhead < 0.01


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_training_observed(benchmark):
    """Tracked shape: the B=64 training loop with full observability on."""

    def run():
        with collecting_metrics() as registry, collecting_trace() as tracer:
            trainer = _trainer()
            trainer.train(96)
        return trainer, registry, tracer

    trainer, registry, tracer = benchmark.pedantic(run, rounds=3, iterations=1)
    assert trainer.history.num_episodes == 96
    snapshot = registry.snapshot()
    print(
        f"\nobserved training: {snapshot['counters']['env.steps']:.0f} env steps, "
        f"{snapshot['counters']['train.gradient_steps']:.0f} gradient steps, "
        f"{len(tracer.records())} spans"
    )
