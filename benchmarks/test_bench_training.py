"""Benchmark: serial vs lockstep-batched DQN training.

The batched trainer collects B transitions per lockstep step — one batched Q
forward, one batched environment step and one vectorised replay insert for
the whole batch — where the serial loop pays python/numpy dispatch per
transition.  Gradient work is *identical* per transition on both paths (the
cadence is indexed by the global transition counter), so the measured metric
is end-to-end environment-steps per second of the full training loop.

``test_batched_training_speedup`` is the acceptance gate: >= 3x
environment-steps/sec over the serial reference loop at B >= 8 lanes (the
gate runs B = 64, the rollout core's default lane width) on a
collection-bound cadence.  The pytest-benchmark groups additionally record
the serial / B=8 / B=64 shapes for tracking.
"""

import time

import pytest

from repro.envs.navigation import NavigationEnv
from repro.envs.obstacles import ObstacleDensity
from repro.experiments.profiles import FAST_PROFILE
from repro.nn.policies import mlp
from repro.rl.dqn import DqnConfig, DqnTrainer
from repro.rl.schedules import LinearDecay

#: Lane count of the acceptance gate (B >= 8; 64 is the rollout-core default).
GATE_LANES = 64

#: Collection-bound throughput cadence: gradient steps every 8 transitions,
#: so the benchmark measures the experience-collection refactor rather than
#: the (path-independent) gradient arithmetic.
def _config(train_lanes: int) -> DqnConfig:
    return DqnConfig(
        batch_size=16,
        buffer_capacity=8000,
        learning_starts=128,
        train_frequency=8,
        target_update_interval=250,
        epsilon_schedule=LinearDecay(start=1.0, end=0.05, decay_steps=1500),
        train_lanes=train_lanes,
    )


def _trainer(train_lanes: int) -> DqnTrainer:
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity.SPARSE)
    return DqnTrainer(
        NavigationEnv(config, rng=5),
        policy_spec=mlp((32, 32)),
        config=_config(train_lanes),
        rng=9,
    )


def _steps_per_second(train_lanes: int, episodes: int, serial: bool = False) -> float:
    trainer = _trainer(train_lanes)
    start = time.perf_counter()
    if serial:
        trainer.train_serial(episodes)
    else:
        trainer.train(episodes)
    elapsed = time.perf_counter() - start
    assert trainer.history.num_episodes == episodes
    assert trainer.history.gradient_steps > 0
    return trainer.history.total_steps / elapsed


def _train_serial_48() -> DqnTrainer:
    trainer = _trainer(1)
    trainer.train_serial(48)
    return trainer


def _train_batched(lanes: int, episodes: int) -> DqnTrainer:
    trainer = _trainer(lanes)
    trainer.train(episodes)
    return trainer


@pytest.mark.benchmark(group="dqn-training")
def test_bench_training_serial(benchmark):
    trainer = benchmark.pedantic(_train_serial_48, rounds=3, iterations=1)
    assert trainer.history.num_episodes == 48
    print(f"\nserial reference loop: {trainer.history.total_steps} env steps")


@pytest.mark.benchmark(group="dqn-training")
def test_bench_training_batched_b8(benchmark):
    trainer = benchmark.pedantic(_train_batched, args=(8, 48), rounds=3, iterations=1)
    assert trainer.history.num_episodes == 48
    print(f"\nbatched B=8: {trainer.history.total_steps} env steps")


@pytest.mark.benchmark(group="dqn-training")
def test_bench_training_batched_b64(benchmark):
    trainer = benchmark.pedantic(_train_batched, args=(64, 192), rounds=3, iterations=1)
    assert trainer.history.num_episodes == 192
    print(f"\nbatched B=64: {trainer.history.total_steps} env steps")


def _gradient_bound_config(train_lanes: int) -> DqnConfig:
    # Gradient-bound cadence: one batch-64 gradient step per transition.  The
    # lockstep-collection win largely disappears here because the gradient
    # arithmetic (path-independent) dominates; the complementary backend
    # benchmark (benchmarks/test_bench_backend.py) attacks this regime by
    # swapping the compute backend instead.
    return DqnConfig(
        batch_size=64,
        buffer_capacity=8000,
        learning_starts=128,
        train_frequency=1,
        target_update_interval=250,
        epsilon_schedule=LinearDecay(start=1.0, end=0.05, decay_steps=1500),
        train_lanes=train_lanes,
    )


def _train_gradient_bound(train_lanes: int, episodes: int, serial: bool = False) -> DqnTrainer:
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity.SPARSE)
    trainer = DqnTrainer(
        NavigationEnv(config, rng=5),
        policy_spec=mlp((32, 32)),
        config=_gradient_bound_config(train_lanes),
        rng=9,
    )
    if serial:
        trainer.train_serial(episodes)
    else:
        trainer.train(episodes)
    return trainer


@pytest.mark.benchmark(group="dqn-training-gradient-bound")
def test_bench_gradient_bound_serial(benchmark):
    trainer = benchmark.pedantic(_train_gradient_bound, args=(1, 12, True), rounds=3, iterations=1)
    print(f"\ngradient-bound serial: {trainer.history.gradient_steps} gradient steps")


@pytest.mark.benchmark(group="dqn-training-gradient-bound")
def test_bench_gradient_bound_batched_b64(benchmark):
    trainer = benchmark.pedantic(_train_gradient_bound, args=(64, 48), rounds=3, iterations=1)
    print(f"\ngradient-bound B=64: {trainer.history.gradient_steps} gradient steps")


def test_batched_training_speedup():
    """Acceptance gate: >= 3x env-steps/sec at B >= 8 over the serial trainer."""

    def best_of(fn, repeats=3):
        return max(fn() for _ in range(repeats))

    serial = best_of(lambda: _steps_per_second(1, 48, serial=True))
    batched = best_of(lambda: _steps_per_second(GATE_LANES, 256))
    speedup = batched / serial
    print(
        f"\nserial {serial:.0f} steps/s vs batched B={GATE_LANES} "
        f"{batched:.0f} steps/s -> {speedup:.2f}x"
    )
    assert speedup >= 3.0
