"""Benchmark: serial vs lockstep-batched episode rollouts.

The batched core executes B episodes in lockstep — one policy forward, one
batched ray query and one batched segment check per step for the whole batch
— where the serial loop pays python/numpy dispatch per episode-step.  Both
paths produce bit-identical ``EpisodeResult`` lists under per-episode reset
seeds, so the two benchmark groups measure the same work.

``test_batched_speedup_at_b64`` is the acceptance gate: >= 5x episodes/sec
on the batched path at B = 64.  The fault-protocol group measures the paper's
many-fault-maps evaluation (quantize-once + batched missions vs single-lane).
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.envs.batch import BatchedNavigationEnv, run_batched_episodes
from repro.envs.navigation import NavigationEnv
from repro.envs.obstacles import ObstacleDensity
from repro.envs.vector import run_episode
from repro.experiments.profiles import FAST_PROFILE
from repro.nn.policies import build_policy, mlp
from repro.rl.evaluation import evaluate_under_faults, greedy_policy
from repro.worlds.spec import WorldSpec

NUM_EPISODES = 64
RESET_SEED = 100


def _policy_for(env: NavigationEnv):
    network = build_policy(
        mlp((48, 48)), env.observation_space.shape, env.action_space.n, rng=0
    )
    return greedy_policy(network)


@pytest.fixture(scope="module", params=["sparse", "medium", "dense"])
def rollout_setup(request):
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity(request.param))
    serial_env = NavigationEnv(config, rng=7)
    batched_env = BatchedNavigationEnv.from_env(
        NavigationEnv(config, rng=7), batch_size=NUM_EPISODES
    )
    return request.param, serial_env, batched_env, _policy_for(serial_env)


def _run_serial(env, policy):
    return [
        run_episode(env, policy, reset_seed=RESET_SEED + index)
        for index in range(NUM_EPISODES)
    ]


def _run_batched(env, policy):
    return run_batched_episodes(env, policy, NUM_EPISODES, reset_seed=RESET_SEED)


@pytest.mark.benchmark(group="rollout-64-episodes")
def test_bench_rollout_serial(benchmark, rollout_setup):
    density, serial_env, _, policy = rollout_setup
    results = benchmark.pedantic(
        _run_serial, args=(serial_env, policy), rounds=3, iterations=1
    )
    assert len(results) == NUM_EPISODES
    print(f"\n[{density}] serial rollout of {NUM_EPISODES} greedy episodes")


@pytest.mark.benchmark(group="rollout-64-episodes")
def test_bench_rollout_batched(benchmark, rollout_setup):
    density, serial_env, batched_env, policy = rollout_setup
    results = benchmark.pedantic(
        _run_batched, args=(batched_env, policy), rounds=3, iterations=1
    )
    # The batched path is a refactor, not an approximation: bit-identical.
    assert results == _run_serial(serial_env, policy)
    print(f"\n[{density}] batched rollout (B={NUM_EPISODES}) of the same episodes")


def test_batched_speedup_at_b64():
    """Acceptance gate: >= 5x episodes/sec on the batched path at B = 64."""
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity.SPARSE)
    serial_env = NavigationEnv(config, rng=7)
    batched_env = BatchedNavigationEnv.from_env(
        NavigationEnv(config, rng=7), batch_size=NUM_EPISODES
    )
    policy = _policy_for(serial_env)
    assert _run_batched(batched_env, policy) == _run_serial(serial_env, policy)

    def best_of(fn, *args, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    serial_s = best_of(_run_serial, serial_env, policy)
    batched_s = best_of(_run_batched, batched_env, policy)
    speedup = serial_s / batched_s
    print(
        f"\nserial {NUM_EPISODES / serial_s:.0f} eps/s, "
        f"batched {NUM_EPISODES / batched_s:.0f} eps/s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0


def _dynamic_config():
    return replace(
        FAST_PROFILE.navigation_for_density(ObstacleDensity.SPARSE),
        world_spec=WorldSpec("dynamic", seed=2),
    )


@pytest.fixture(scope="module")
def dynamic_rollout_setup():
    config = _dynamic_config()
    serial_env = NavigationEnv(config, rng=7)
    batched_env = BatchedNavigationEnv.from_env(
        NavigationEnv(config, rng=7), batch_size=NUM_EPISODES
    )
    return serial_env, batched_env, _policy_for(serial_env)


@pytest.mark.benchmark(group="rollout-dynamic-64-episodes")
def test_bench_dynamic_rollout_serial(benchmark, dynamic_rollout_setup):
    serial_env, _, policy = dynamic_rollout_setup
    results = benchmark.pedantic(
        _run_serial, args=(serial_env, policy), rounds=3, iterations=1
    )
    assert len(results) == NUM_EPISODES
    print(f"\n[dynamic] serial rollout: an at_time() snapshot per episode-step")


@pytest.mark.benchmark(group="rollout-dynamic-64-episodes")
def test_bench_dynamic_rollout_batched(benchmark, dynamic_rollout_setup):
    serial_env, batched_env, policy = dynamic_rollout_setup
    results = benchmark.pedantic(
        _run_batched, args=(batched_env, policy), rounds=3, iterations=1
    )
    # Lanes finish at different steps, so the batch carries desynchronised
    # episode clocks through one timed query per step — still bit-identical.
    assert results == _run_serial(serial_env, policy)
    print(f"\n[dynamic] batched rollout (B={NUM_EPISODES}): one timed query per step")


def test_dynamic_batched_speedup_at_b64():
    """Acceptance gate: >= 4x episodes/sec on a moving-obstacle world at
    B = 64, where per-row times (desynchronised lane clocks) previously forced
    one ``at_time`` snapshot per distinct (field, time) group."""
    config = _dynamic_config()
    serial_env = NavigationEnv(config, rng=7)
    batched_env = BatchedNavigationEnv.from_env(
        NavigationEnv(config, rng=7), batch_size=NUM_EPISODES
    )
    policy = _policy_for(serial_env)
    assert _run_batched(batched_env, policy) == _run_serial(serial_env, policy)

    def best_of(fn, *args, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    serial_s = best_of(_run_serial, serial_env, policy)
    batched_s = best_of(_run_batched, batched_env, policy)
    speedup = serial_s / batched_s
    print(
        f"\n[dynamic] serial {NUM_EPISODES / serial_s:.0f} eps/s, "
        f"batched {NUM_EPISODES / batched_s:.0f} eps/s, speedup {speedup:.1f}x"
    )
    assert speedup >= 4.0


@pytest.fixture(scope="module")
def fault_setup():
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity.MEDIUM)
    env = NavigationEnv(config, rng=7)
    network = build_policy(
        mlp((48, 48)), env.observation_space.shape, env.action_space.n, rng=0
    )
    return env, network


def _fault_protocol(env, network, batch_size):
    return evaluate_under_faults(
        env,
        network,
        ber_percent=1.0,
        num_fault_maps=16,
        episodes_per_map=8,
        rng=0,
        batch_size=batch_size,
    )


@pytest.mark.benchmark(group="fault-map-protocol")
def test_bench_fault_protocol_single_lane(benchmark, fault_setup):
    env, network = fault_setup
    point = benchmark.pedantic(
        _fault_protocol, args=(env, network, 1), rounds=3, iterations=1
    )
    assert 0.0 <= point.success_rate <= 1.0


@pytest.mark.benchmark(group="fault-map-protocol")
def test_bench_fault_protocol_batched(benchmark, fault_setup):
    env, network = fault_setup
    point = benchmark.pedantic(
        _fault_protocol, args=(env, network, None), rounds=3, iterations=1
    )
    reference = _fault_protocol(env, network, 1)
    # Same protocol, same seeds, same lockstep episodes: identical statistics
    # (path means compared NaN-aware — no mission may survive at this BER).
    assert point.per_map_success_rates == reference.per_map_success_rates
    assert point.success_rate == reference.success_rate
    assert point.mean_path_length_m == reference.mean_path_length_m or (
        np.isnan(point.mean_path_length_m) and np.isnan(reference.mean_path_length_m)
    )
