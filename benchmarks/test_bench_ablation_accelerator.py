"""Ablation benchmark: accelerator cost model across policy architectures and dataflows.

Not a table in the paper, but the design-choice ablation DESIGN.md calls out:
how the per-inference processing energy and latency differ between the C3F2
and C5F4 policies (Fig. 7's compute-power ratios ultimately come from this)
and between output-stationary and weight-stationary dataflows.
"""

import pytest

from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.systolic import SystolicArrayConfig
from repro.nn.policies import build_policy, c3f2, c5f4
from repro.utils.tables import Table

OBSERVATION_SHAPE = (3, 36, 36)
NUM_ACTIONS = 25


def build_cost_table() -> Table:
    table = Table(
        title="Ablation: per-inference cost of C3F2 vs C5F4 across dataflows",
        columns=["policy", "dataflow", "parameters", "macs", "latency_ms_at_1v", "energy_mj_at_1v", "energy_mj_at_077vmin"],
    )
    for name, spec in (("C3F2", c3f2()), ("C5F4", c5f4())):
        network = build_policy(spec, OBSERVATION_SHAPE, NUM_ACTIONS, rng=0)
        for dataflow in ("os", "ws"):
            model = AcceleratorModel(
                network, OBSERVATION_SHAPE, array=SystolicArrayConfig(dataflow=dataflow)
            )
            nominal = model.inference_cost(model.scaling.nominal_normalized)
            low = model.inference_cost(0.77)
            table.add_row(
                policy=name,
                dataflow=dataflow,
                parameters=network.num_parameters(),
                macs=model.total_macs,
                latency_ms_at_1v=nominal.latency_ms,
                energy_mj_at_1v=nominal.energy_millijoules,
                energy_mj_at_077vmin=low.energy_millijoules,
            )
    return table


def test_bench_ablation_accelerator(benchmark, print_table):
    table = benchmark.pedantic(build_cost_table, iterations=1, rounds=3)
    print_table(table)
    rows = {(row["policy"], row["dataflow"]): row for row in table.rows}
    # C5F4 is the heavier policy in every respect (paper: 1.98x parameters, 4.1 % vs 2.8 % power).
    assert rows[("C5F4", "os")]["parameters"] > 1.5 * rows[("C3F2", "os")]["parameters"]
    assert rows[("C5F4", "os")]["energy_mj_at_1v"] > rows[("C3F2", "os")]["energy_mj_at_1v"]
    # Low-voltage operation saves energy for every configuration.
    for row in table.rows:
        assert row["energy_mj_at_077vmin"] < row["energy_mj_at_1v"]
