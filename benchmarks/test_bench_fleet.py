"""Benchmark: city-scale fleet lockstep advancement.

One :meth:`~repro.fleet.sim.FleetSim.step` advances every airborne vehicle
through a handful of fleet-wide batched queries — a timed ray fan, two timed
segment sweeps, and prescreened conflict detection — so the per-step cost
must stay sub-linear in python dispatch as the fleet grows.  The 1000-UAV
group is the acceptance workload: a fleet the spatial-hash prescreen was
built for (the all-pairs candidate set alone would be ~500k pairs/step).

Timings land in the PR 8 benchmark ledger like every other group (one
``bench.<name>.duration_s`` histogram per benchmark via conftest).
"""

import time

import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetSim
from repro.fleet.conflicts import all_pairs
from repro.worlds.dynamic import DynamicObstacleField, MovingObstacle

NUM_VEHICLES = 1000
BENCH_STEPS = 10


def _city_field() -> DynamicObstacleField:
    """A 150x150 m airspace: scattered static blockers plus patrol movers."""
    rng = np.random.default_rng(42)
    num_static = 60
    movers = tuple(
        MovingObstacle(
            waypoints=rng.uniform(10.0, 140.0, size=(4, 2)),
            radius=1.0,
            speed_m_s=2.0,
            phase_m=float(rng.uniform(0.0, 30.0)),
        )
        for _ in range(12)
    )
    return DynamicObstacleField(
        world_size=(150.0, 150.0),
        centers=rng.uniform(5.0, 145.0, size=(num_static, 2)),
        radii=rng.uniform(0.8, 2.5, size=num_static),
        movers=movers,
    )


@pytest.fixture(scope="module")
def fleet_setup():
    field = _city_field()
    config = FleetConfig(
        num_vehicles=NUM_VEHICLES,
        max_steps=BENCH_STEPS,
        num_chargers=16,
        separation_m=0.8,
    )
    return field, config


def _run_steps(field, config):
    sim = FleetSim(field, config, rng=0)
    for _ in range(BENCH_STEPS):
        sim.step()
    return sim


@pytest.mark.benchmark(group="fleet-1000-uav")
def test_bench_fleet_1000_steps(benchmark, fleet_setup):
    field, config = fleet_setup
    sim = benchmark.pedantic(_run_steps, args=(field, config), rounds=3, iterations=1)
    assert sim.step_index == BENCH_STEPS
    assert int(np.count_nonzero(sim.airborne)) > NUM_VEHICLES // 2
    print(f"\n[fleet] {NUM_VEHICLES} UAVs, {BENCH_STEPS} lockstep steps per round")


def test_fleet_1000_steps_per_second():
    """Acceptance: the 1000-UAV lockstep core sustains whole-fleet steps at
    interactive rates, and the prescreen keeps exact conflict checks to a
    small fraction of the ~500k all-pairs set."""
    from repro.obs import collecting_metrics

    field = _city_field()
    config = FleetConfig(num_vehicles=NUM_VEHICLES, max_steps=BENCH_STEPS)

    best = float("inf")
    with collecting_metrics() as registry:
        for _ in range(3):
            start = time.perf_counter()
            _run_steps(field, config)
            best = min(best, time.perf_counter() - start)
    steps_per_s = BENCH_STEPS / best
    snapshot = registry.snapshot()
    checked = snapshot["counters"].get("fleet.conflict_checks", 0)
    candidate_budget = 3 * BENCH_STEPS * all_pairs(NUM_VEHICLES).shape[0]
    print(
        f"\n[fleet] {steps_per_s:.1f} fleet-steps/s at N={NUM_VEHICLES} "
        f"({steps_per_s * NUM_VEHICLES:.0f} vehicle-steps/s); "
        f"exact conflict checks {checked} of {candidate_budget} all-pairs"
    )
    assert steps_per_s >= 1.0
    assert 0 < checked < candidate_budget / 10
