"""Benchmark: the sweep engine — serial vs worker-pool wall time and cached re-runs.

Uses a reduced fig5-style sweep (the Fig. 5 environment x scheme grid over a
densified candidate-voltage ladder, so each job does a few hundred
operating-point evaluations) to compare:

* the serial backend,
* a 2-worker multiprocessing pool on the identical sweep,
* an immediate re-run against a warm content-addressed cache.

The assertions pin the engine's semantics (identical results from both
backends; a warm re-run executes nothing); the timings are the measurement.
On a single-core host the pool can at best tie the serial backend (its margin
over serial *is* the dispatch overhead); the speedup shows up with real cores.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig5 import fig5_sweep_spec
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SweepRunner
from repro.runtime.executor import MultiprocessExecutor, SerialExecutor

#: A dense voltage ladder makes each fig5 cell expensive enough to dispatch.
DENSE_VOLTAGES = tuple(np.round(np.linspace(0.86, 0.70, 1000), 6))


def _sweep():
    return fig5_sweep_spec(candidate_voltages=DENSE_VOLTAGES)


def test_bench_runtime_serial(benchmark):
    sweep = _sweep()
    report = benchmark.pedantic(
        lambda: SweepRunner(executor=SerialExecutor()).run(sweep), rounds=5, iterations=1
    )
    assert report.executed == len(sweep)
    assert report.complete


def test_bench_runtime_worker_pool(benchmark):
    sweep = _sweep()
    executor = MultiprocessExecutor(workers=2)
    report = benchmark.pedantic(
        lambda: SweepRunner(executor=executor).run(sweep), rounds=3, iterations=1
    )
    assert report.executed == len(sweep)
    serial = SweepRunner(executor=SerialExecutor()).run(sweep)
    assert report.results == serial.results


def test_bench_runtime_cached_rerun(benchmark, tmp_path):
    sweep = _sweep()
    runner = SweepRunner(cache=ResultCache(root=tmp_path))
    warmup = runner.run(sweep)
    assert warmup.executed == len(sweep)

    report = benchmark(lambda: runner.run(sweep))
    # The re-run must be a pure cache hit: no job executes a second time.
    assert report.executed == 0
    assert report.cache_hits == len(sweep)
    assert report.results == warmup.results
    speedup = warmup.wall_time_s / max(report.wall_time_s, 1e-9)
    print(f"\ncached re-run speedup vs fresh serial run: {speedup:.1f}x")
