"""Benchmark: regenerate Table IV — on-device error-aware robust learning."""

from repro.experiments.table4 import generate_table4_on_device


def test_bench_table4_on_device(benchmark, print_table):
    table = benchmark(generate_table4_on_device)
    print_table(table)
    rows = {(row["mode"], row["learning_steps"], row["voltage_vmin"]): row for row in table.rows}
    on_device_6k = rows[("on-device BERRY", 6000, 0.70)]
    on_device_4k = rows[("on-device BERRY", 4000, 0.70)]
    offline = rows[("offline BERRY", 0, 0.70)]
    # On-device learning at the chip's own fault pattern recovers the robustness
    # that offline BERRY loses at 0.70 Vmin, at the cost of learning energy.
    assert on_device_6k["success_rate_pct"] > offline["success_rate_pct"] + 5.0
    assert on_device_6k["success_rate_pct"] >= on_device_4k["success_rate_pct"]
    assert on_device_6k["learning_energy_j"] > on_device_4k["learning_energy_j"]
    assert on_device_6k["flight_energy_j"] < offline["flight_energy_j"]
    assert on_device_6k["energy_savings_x"] > 4.0
