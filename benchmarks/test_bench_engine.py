"""Benchmark: job fusion and the warm worker pool — the engine perf gates.

Two workloads, two gates:

* **Fusion** — a cache-cold fusable ``rollout.generalized`` slice (one world,
  eight BER levels = fusion width 8, batched evaluation at B=64 episodes).
  The fused path must finish at least **3x** faster end-to-end than the
  unfused per-job path, while producing bitwise-identical per-job results,
  cache entries and journal records (modulo wall-clock fields).  The split
  is honest: the unfused path re-trains the shared policy once per BER
  level, the fused path trains it once per group — that shared-prefix
  elimination is the whole optimisation.

* **Warm pool** — a generalization slice run twice on the same
  :class:`WarmPoolExecutor`.  The second run must spawn **zero** new worker
  processes and resolve at least **90%** of its world lookups from the
  per-worker warm caches.

The timed benchmark rounds feed the ``engine`` ledger group, so
``repro-runtime obs check --fail-on-regression`` tracks fusion/pool drift
across runs like every other benchmark group.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.experiments.generalization import (
    FAMILY_PRESETS,
    generalization_rollout_sweep_spec,
    generalization_sweep_spec,
)
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SweepRunner
from repro.runtime.journal import Journal
from repro.runtime.pool import WarmPoolExecutor, shutdown_pool
from repro.utils.warmcache import clear_warm_caches, hit_rate

#: The fusable axis: eight BER levels over one trained world = width 8.
FUSION_BER_LEVELS = (0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
FUSION_WIDTH = 8
#: Batched-core evaluation width per job.
BATCH_EPISODES = 64
#: End-to-end wall-clock gate: fused must beat unfused by at least this.
MIN_FUSION_SPEEDUP = 3.0
#: Warm-pool gate: share of world lookups served warm on the re-run.
MIN_WARM_HIT_RATE = 0.90


def _fusable_slice():
    """One world x eight BER levels: every job shares the trained policy."""
    return generalization_rollout_sweep_spec(
        presets=FAMILY_PRESETS[:1],
        seeds=(0,),
        ber_levels=FUSION_BER_LEVELS,
        num_episodes=BATCH_EPISODES,
        training_episodes=48,
        num_fault_maps=2,
        train_lanes=8,
    )


def _strip_volatile(record):
    return {k: v for k, v in record.items() if k not in ("ts", "duration_s")}


def _journal_records(sweep, directory):
    path = Journal.for_sweep(sweep, directory).path
    return sorted(
        (_strip_volatile(json.loads(line)) for line in path.read_text().splitlines()),
        key=lambda record: record.get("job", ""),
    )


@pytest.mark.benchmark(group="engine")
def test_bench_engine_fusion_speedup(benchmark, tmp_path):
    """Gate: >=3x cold wall-clock, bitwise-identical artifacts."""
    sweep = _fusable_slice()

    clear_warm_caches()
    unfused_cache = ResultCache(root=tmp_path / "unfused-cache")
    unfused = SweepRunner(
        cache=unfused_cache, journal_dir=tmp_path / "unfused-journal", fuse=False
    ).run(sweep)
    unfused_s = unfused.wall_time_s

    rounds = itertools.count()

    def fused_cold_run():
        clear_warm_caches()
        attempt = next(rounds)
        return (
            SweepRunner(
                cache=ResultCache(root=tmp_path / f"fused-cache-{attempt}"),
                journal_dir=tmp_path / f"fused-journal-{attempt}",
                fuse=True,
                fusion_width=FUSION_WIDTH,
            ).run(sweep),
            attempt,
        )

    fused, last_round = benchmark.pedantic(fused_cold_run, rounds=3, iterations=1)
    fused_s = fused.wall_time_s

    assert fused.fused_jobs == len(sweep)
    assert fused.results == unfused.results

    # Bitwise artifact equivalence: cache entries and journal records from the
    # last timed round must match the unfused references exactly.
    fused_cache = ResultCache(root=tmp_path / f"fused-cache-{last_round}")
    for job in sweep.jobs:
        assert fused_cache.path_for(job).read_text() == unfused_cache.path_for(
            job
        ).read_text()
    assert _journal_records(sweep, tmp_path / f"fused-journal-{last_round}") == (
        _journal_records(sweep, tmp_path / "unfused-journal")
    )

    speedup = unfused_s / max(fused_s, 1e-9)
    print(f"\nfusion speedup (cold, width {FUSION_WIDTH}): {speedup:.2f}x")
    assert speedup >= MIN_FUSION_SPEEDUP, (
        f"fused path only {speedup:.2f}x faster than unfused "
        f"(gate: {MIN_FUSION_SPEEDUP}x; unfused {unfused_s:.2f}s, fused {fused_s:.2f}s)"
    )


@pytest.mark.benchmark(group="engine")
def test_bench_engine_warm_pool_rerun(benchmark):
    """Gate: re-run spawns zero workers, >=90% warm world-cache hits."""
    sweep = generalization_sweep_spec(presets=FAMILY_PRESETS[:2], seeds=(0, 1))
    shutdown_pool()
    try:
        executor = WarmPoolExecutor(workers=2)
        runner = SweepRunner(executor=executor, fuse=False)
        cold = runner.run(sweep)
        assert executor.last_stats["spawned"] == 2
        # "world_metrics" is the world-level warm cache these jobs probe on
        # every execution (it wraps world generation and metric extraction);
        # a warm hit there means the worker skipped recompiling the world.
        cold_warm = executor.warm_stats().get("world_metrics", {"hits": 0, "misses": 0})

        warm = benchmark(lambda: SweepRunner(executor=executor, fuse=False).run(sweep))
        assert warm.results == cold.results
        assert executor.last_stats["spawned"] == 0, "warm re-run spawned processes"

        rerun_warm = executor.warm_stats().get("world_metrics", {"hits": 0, "misses": 0})
        # The benchmark fixture may run several rounds; rate the delta over
        # everything after the cold run — all of it should be warm.
        delta_hits = rerun_warm["hits"] - cold_warm["hits"]
        delta_misses = rerun_warm["misses"] - cold_warm["misses"]
        rate = delta_hits / max(1, delta_hits + delta_misses)
        print(
            f"\nwarm re-run world-cache hit rate: {100 * rate:.1f}% "
            f"({delta_hits} hits / {delta_misses} misses)"
        )
        assert rate >= MIN_WARM_HIT_RATE
    finally:
        shutdown_pool()
