"""Benchmark: regenerate Table II — operating and system efficiency vs supply voltage."""

from repro.experiments.table2 import generate_table2_system_efficiency


def test_bench_table2_system_efficiency(benchmark, print_table):
    table = benchmark(generate_table2_system_efficiency)
    print_table(table)
    rows = {row["voltage_vmin"]: row for row in table.rows}
    headline = rows[0.77]
    assert headline["energy_savings_x"] > 3.3
    assert headline["flight_energy_change_pct"] < -10.0
    assert headline["missions_change_pct"] > 10.0
    # The sweet spot exists: savings reverse by 0.64 Vmin (robustness collapse).
    assert rows[0.64]["flight_energy_change_pct"] > 0.0
    assert rows[0.64]["missions_change_pct"] < 0.0
