"""Benchmark: regenerate Fig. 1 — the voltage -> physics -> mission chain (DJI Tello)."""

from repro.experiments.fig1 import generate_fig1_voltage_physics


def test_bench_fig1_voltage_physics(benchmark, print_table):
    table = benchmark(generate_fig1_voltage_physics)
    print_table(table)
    rows = {row["supply_voltage_v"]: row for row in table.rows}
    assert rows[0.5]["flight_energy_kj"] < rows[1.5]["flight_energy_kj"]
    assert rows[0.5]["num_missions"] > rows[1.5]["num_missions"]
