"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
generators in :mod:`repro.experiments` and prints the resulting rows/series so
that ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report.  pytest-benchmark additionally records how long each regeneration
takes.

After a timed session (not under ``--benchmark-disable``) the harness also
appends one record **per benchmark group** to the persistent run ledger
(:mod:`repro.obs.store`): each benchmark's raw timings enter a
``bench.<name>.duration_s`` histogram, so ``repro-runtime obs
history/check`` track the benchmark trajectory exactly like sweep runs.
The ledger path comes from ``$REPRO_BENCH_LEDGER`` (``0`` disables; default
``benchmarks/BENCH_ledger.jsonl``, an accumulating dataset next to the
committed ``BENCH_*.json`` baselines).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.utils.tables import Table, format_aligned

#: Environment variable selecting the benchmark ledger ("0" disables).
BENCH_LEDGER_ENV_VAR = "REPRO_BENCH_LEDGER"


def report(table: Table) -> Table:
    """Print a generated table beneath the benchmark output and pass it through."""
    print()
    print(format_aligned(table))
    return table


@pytest.fixture
def print_table():
    return report


def _bench_ledger_path() -> Path | None:
    value = os.environ.get(BENCH_LEDGER_ENV_VAR)
    if value == "0":
        return None
    if value:
        return Path(value)
    return Path(__file__).resolve().parent / "BENCH_ledger.jsonl"


def pytest_sessionfinish(session, exitstatus):
    """Append one ledger record per benchmark group after a timed session."""
    try:
        _record_benchmark_session(session)
    except Exception:
        # The ledger is best-effort telemetry; it must never fail the suite.
        import traceback

        traceback.print_exc()


def _record_benchmark_session(session) -> None:
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or bench_session.benchmarks is None:
        return
    if getattr(bench_session, "disabled", False):
        return
    path = _bench_ledger_path()
    if path is None:
        return

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.store import RunLedger
    from repro.utils.serialization import stable_hash

    groups: dict = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        data = list(getattr(stats, "data", []) or [])
        if not data:
            continue
        groups.setdefault(bench.group or "ungrouped", []).append((bench.name, data))
    if not groups:
        return

    ledger = RunLedger(path)
    for group, benches in sorted(groups.items()):
        registry = MetricsRegistry()
        total_s = 0.0
        for name, data in benches:
            histogram = registry.histogram(f"bench.{name}.duration_s")
            for duration_s in data:
                histogram.observe(float(duration_s))
                total_s += float(duration_s)
        ledger.record_run(
            kind="benchmark",
            name=group,
            # Content-address the group by its benchmark names: a renamed or
            # added benchmark starts a fresh comparable series.
            spec_hash=stable_hash(sorted(name for name, _ in benches))[:16],
            wall_time_s=total_s,
            counts={"benchmarks": len(benches)},
            metrics=registry.snapshot(),
        )
