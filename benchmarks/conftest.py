"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures via the
generators in :mod:`repro.experiments` and prints the resulting rows/series so
that ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report.  pytest-benchmark additionally records how long each regeneration
takes.
"""

from __future__ import annotations

import pytest

from repro.utils.tables import Table, format_aligned


def report(table: Table) -> Table:
    """Print a generated table beneath the benchmark output and pass it through."""
    print()
    print(format_aligned(table))
    return table


@pytest.fixture
def print_table():
    return report
