"""Benchmark: regenerate Fig. 3 — success rate and flight energy vs bit-error rate."""

from repro.experiments.fig3 import generate_fig3_robustness_vs_ber


def test_bench_fig3_robustness_energy(benchmark, print_table):
    table = benchmark(generate_fig3_robustness_vs_ber)
    print_table(table)
    for row in table.rows:
        assert row["berry_success_pct"] >= row["classical_success_pct"]
    # At high error rates the gap is dramatic (the figure's headline).
    worst = table.rows[-1]
    assert worst["berry_success_pct"] - worst["classical_success_pct"] > 25.0
