"""Benchmark: the pluggable compute backend on the gradient-bound cadence.

The backend refactor (:mod:`repro.nn.backend`) routes every array operation in
the nn/gradient core through an :class:`~repro.nn.backend.ArrayBackend`.  This
benchmark pins the two performance claims that gate it:

* **numpy is (near-)free** — the default backend is a thin delegation layer,
  so end-to-end training throughput and per-op dispatch must stay within noise
  of calling numpy directly (<1 % overhead on the gradient step).
* **torch pays off where it should** — on a convolutional policy at batch
  >= 256 the torch backend must deliver >= 2x gradient-steps/sec over numpy
  (it replaces im2col-matmul with native conv kernels).  Torch tests skip
  automatically when the wheel is not installed.

Unlike :mod:`benchmarks.test_bench_training` (collection-bound cadence, one
gradient step per 8 transitions), the training groups here run the
**gradient-bound** cadence — ``train_frequency=1`` at ``batch_size=64`` — so
the measured quantity is dominated by the backend's matmul/elementwise work,
not by experience collection.
"""

import time

import numpy as np
import pytest

from repro.envs.navigation import NavigationEnv
from repro.envs.obstacles import ObstacleDensity
from repro.experiments.profiles import FAST_PROFILE
from repro.nn.backend import backend_available, get_backend
from repro.nn.backend.numpy_backend import NumpyBackend
from repro.nn.loss import HuberLoss
from repro.nn.optim import Adam
from repro.nn.policies import ConvSpec, PolicySpec, build_policy, mlp
from repro.rl.dqn import DqnConfig, DqnTrainer
from repro.rl.schedules import LinearDecay

requires_torch = pytest.mark.skipif(
    not backend_available("torch"), reason="torch not installed"
)

#: Lane width of the training groups (the rollout core's default).
GATE_LANES = 64


# ---------------------------------------------------------------------------
# Gradient-bound DQN training: serial vs numpy-backend vs torch-backend
# ---------------------------------------------------------------------------

def _config(train_lanes: int, backend: str) -> DqnConfig:
    # Gradient-bound cadence: one batch-64 gradient step per env transition.
    return DqnConfig(
        batch_size=64,
        buffer_capacity=8000,
        learning_starts=128,
        train_frequency=1,
        target_update_interval=250,
        epsilon_schedule=LinearDecay(start=1.0, end=0.05, decay_steps=1500),
        train_lanes=train_lanes,
        backend=backend,
    )


def _trainer(train_lanes: int, backend: str) -> DqnTrainer:
    config = FAST_PROFILE.navigation_for_density(ObstacleDensity.SPARSE)
    return DqnTrainer(
        NavigationEnv(config, rng=5),
        policy_spec=mlp((32, 32)),
        config=_config(train_lanes, backend),
        rng=9,
    )


def _gradient_steps_per_second(backend: str, episodes: int, serial: bool = False) -> float:
    trainer = _trainer(1 if serial else GATE_LANES, backend)
    start = time.perf_counter()
    if serial:
        trainer.train_serial(episodes)
    else:
        trainer.train(episodes)
    elapsed = time.perf_counter() - start
    assert trainer.history.num_episodes == episodes
    assert trainer.history.gradient_steps > 0
    return trainer.history.gradient_steps / elapsed


def _train(backend: str, episodes: int, serial: bool = False) -> DqnTrainer:
    trainer = _trainer(1 if serial else GATE_LANES, backend)
    if serial:
        trainer.train_serial(episodes)
    else:
        trainer.train(episodes)
    return trainer


@pytest.mark.benchmark(group="gradient-bound-training")
def test_bench_gradient_bound_serial_numpy(benchmark):
    trainer = benchmark.pedantic(_train, args=("numpy", 12, True), rounds=3, iterations=1)
    print(f"\nserial/numpy: {trainer.history.gradient_steps} gradient steps")


@pytest.mark.benchmark(group="gradient-bound-training")
def test_bench_gradient_bound_batched_numpy(benchmark):
    trainer = benchmark.pedantic(_train, args=("numpy", 48), rounds=3, iterations=1)
    print(f"\nbatched B={GATE_LANES}/numpy: {trainer.history.gradient_steps} gradient steps")


@requires_torch
@pytest.mark.benchmark(group="gradient-bound-training")
def test_bench_gradient_bound_batched_torch(benchmark):
    trainer = benchmark.pedantic(_train, args=("torch", 48), rounds=3, iterations=1)
    print(f"\nbatched B={GATE_LANES}/torch: {trainer.history.gradient_steps} gradient steps")


# ---------------------------------------------------------------------------
# Acceptance gate 1: the numpy backend adds <1 % over direct numpy calls
# ---------------------------------------------------------------------------

class _CountingNumpyBackend(NumpyBackend):
    """NumpyBackend proxy that counts every dispatched backend call.

    Used to turn "the dispatch tax is small" into an exact statement: run one
    real gradient step through this backend, read off the op count, multiply
    by the measured per-call indirection delta.
    """

    def __init__(self) -> None:
        self.calls = 0
        for attr in dir(NumpyBackend):
            if attr.startswith("_") or attr == "name":
                continue
            method = getattr(NumpyBackend, attr)
            if callable(method):
                setattr(self, attr, self._counted(method))

    def _counted(self, method):
        def wrapped(*args, **kwargs):
            self.calls += 1
            return method(self, *args, **kwargs)

        return wrapped


def _dispatch_delta_ns() -> float:
    """Per-call cost of routing ``np.add`` through the backend method.

    Interleaves direct/routed timing blocks and takes the min of each so CPU
    frequency drift cancels; tiny operands make the delta pure python-call
    indirection rather than array arithmetic.
    """
    be = get_backend("numpy")
    x, y, out = np.zeros(8), np.ones(8), np.empty(8)
    calls = 20000

    def block(fn):
        start = time.perf_counter()
        for _ in range(calls):
            fn(x, y, out=out)
        return (time.perf_counter() - start) / calls

    direct, routed = float("inf"), float("inf")
    for _ in range(9):
        direct = min(direct, block(np.add))
        routed = min(routed, block(be.add))
    return max(0.0, routed - direct) * 1e9


def _conv_step_op_count() -> int:
    """Exact backend ops in one conv-policy gradient step at batch 256."""
    counting = _CountingNumpyBackend()
    network = build_policy(_CONV_SPEC, _OBS_SHAPE, num_actions=5, rng=3, backend=counting)
    loss_fn = HuberLoss(backend=counting)
    optimizer = Adam(network.parameters(), lr=1e-3, grad_clip=1.0)
    rng = np.random.default_rng(7)
    batch = rng.normal(size=(_CONV_BATCH,) + _OBS_SHAPE)
    targets = rng.normal(size=(_CONV_BATCH, 5))
    counting.calls = 0
    predictions = network.forward(batch)
    _, grad = loss_fn(predictions, targets)
    network.zero_grad()
    network.backward(grad)
    optimizer.step()
    return counting.calls


def test_numpy_backend_indirection_overhead_under_one_percent():
    """Acceptance gate: backend dispatch costs <1 % of the gradient step.

    The numpy backend is a one-line delegation layer, so the *only* cost the
    refactor can add to the hot path is python call indirection.  The gate is
    exact rather than hand-wavy: a counting proxy backend records how many
    backend calls one real conv-policy gradient step makes (the workload the
    torch gate below targets), and that count times the measured per-call
    indirection delta must stay under 1 % of the measured step time.
    """
    delta_ns = _dispatch_delta_ns()
    ops = _conv_step_op_count()
    step_time = 1.0 / _conv_gradient_step_rate("numpy", steps=3)
    overhead_fraction = (ops * delta_ns * 1e-9) / step_time
    print(
        f"\nper-call indirection {delta_ns:.0f} ns x {ops} backend ops/step, "
        f"conv step {step_time * 1e3:.0f} ms -> overhead {overhead_fraction * 100:.4f}%"
    )
    assert overhead_fraction < 0.01


# ---------------------------------------------------------------------------
# Acceptance gate 2: torch >= 2x gradient-steps/sec on a conv policy, B >= 256
# ---------------------------------------------------------------------------

#: Small two-conv policy; torch replaces im2col-matmul with native conv kernels.
_CONV_SPEC = PolicySpec(
    name="bench-conv",
    conv_layers=(
        ConvSpec(out_channels=16, kernel_size=4, stride=2),
        ConvSpec(out_channels=32, kernel_size=3, stride=1),
    ),
    hidden_units=(128,),
)
_OBS_SHAPE = (2, 20, 20)
_CONV_BATCH = 256


def _conv_gradient_step_rate(backend_name: str, steps: int = 12) -> float:
    """Full supervised gradient-step rate on the conv policy at batch 256."""
    network = build_policy(_CONV_SPEC, _OBS_SHAPE, num_actions=5, rng=3, backend=backend_name)
    loss_fn = HuberLoss(backend=backend_name)
    optimizer = Adam(network.parameters(), lr=1e-3, grad_clip=1.0)
    rng = np.random.default_rng(7)
    batch = rng.normal(size=(_CONV_BATCH,) + _OBS_SHAPE)
    targets = rng.normal(size=(_CONV_BATCH, 5))

    def one_step():
        predictions = network.forward(batch)
        _, grad = loss_fn(predictions, targets)
        network.zero_grad()
        network.backward(grad)
        optimizer.step()

    one_step()  # warm-up (buffer allocation, torch autotune, caches)
    start = time.perf_counter()
    for _ in range(steps):
        one_step()
    return steps / (time.perf_counter() - start)


@pytest.mark.benchmark(group="conv-gradient-step")
def test_bench_conv_gradient_step_numpy(benchmark):
    rate = benchmark.pedantic(_conv_gradient_step_rate, args=("numpy", 6), rounds=3, iterations=1)
    print(f"\nconv B={_CONV_BATCH} numpy: {rate:.2f} gradient steps/s")


@requires_torch
@pytest.mark.benchmark(group="conv-gradient-step")
def test_bench_conv_gradient_step_torch(benchmark):
    rate = benchmark.pedantic(_conv_gradient_step_rate, args=("torch", 6), rounds=3, iterations=1)
    print(f"\nconv B={_CONV_BATCH} torch: {rate:.2f} gradient steps/s")


@requires_torch
def test_torch_beats_numpy_on_conv_gradient_steps():
    """Acceptance gate: torch >= 2x gradient-steps/sec at batch >= 256."""
    numpy_rate = max(_conv_gradient_step_rate("numpy") for _ in range(2))
    torch_rate = max(_conv_gradient_step_rate("torch") for _ in range(2))
    speedup = torch_rate / numpy_rate
    print(
        f"\nconv B={_CONV_BATCH}: numpy {numpy_rate:.2f} vs torch {torch_rate:.2f} "
        f"gradient steps/s -> {speedup:.2f}x"
    )
    assert speedup >= 2.0


@requires_torch
def test_torch_training_matches_numpy_qualitatively():
    """The torch-backed trainer runs the same cadence and still learns."""
    trainer = _train("torch", 12)
    assert trainer.history.gradient_steps > 0
    assert trainer.backend.name == "torch"
