"""Benchmark: regenerate Fig. 2 — SRAM bit-error rate and access energy vs voltage."""

from repro.experiments.fig2 import generate_fig2_voltage_ber_energy


def test_bench_fig2_voltage_ber(benchmark, print_table):
    table = benchmark(generate_fig2_voltage_ber_energy)
    print_table(table)
    bers = table.column("ber_percent")
    energies = table.column("sram_access_energy_nj")
    assert all(a >= b for a, b in zip(bers, bers[1:]))
    assert all(a <= b for a, b in zip(energies, energies[1:]))
    # The error rate spans many orders of magnitude across the sweep (Fig. 2's log axis).
    assert max(bers) / min(b for b in bers if b > 0) > 1e4
