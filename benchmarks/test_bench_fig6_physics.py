"""Benchmark: regenerate Fig. 6 — heatsink weight, acceleration and safe velocity relations."""

import pytest

from repro.experiments.fig6 import generate_fig6_physics_relations


def test_bench_fig6_physics(benchmark, print_table):
    table = benchmark(generate_fig6_physics_relations)
    print_table(table)
    rows = sorted(table.rows, key=lambda row: row["voltage_vmin"])
    low, high = rows[0], rows[-1]
    assert low["heatsink_weight_g"] < high["heatsink_weight_g"]
    assert low["acceleration_m_s2"] > high["acceleration_m_s2"]
    assert low["max_velocity_m_s"] > high["max_velocity_m_s"]
    # Spot-check the published Fig. 6 endpoints (1.28 Vmin -> 3.26 g, 0.79 Vmin -> 1.22 g).
    by_voltage = {round(row["voltage_vmin"], 2): row for row in table.rows}
    if 1.25 in by_voltage:
        assert by_voltage[1.25]["heatsink_weight_g"] == pytest.approx(3.1, rel=0.1)
