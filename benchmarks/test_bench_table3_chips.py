"""Benchmark: regenerate Table III — generalisation to profiled chips."""

from repro.experiments.table3 import generate_table3_profiled_chips


def test_bench_table3_profiled_chips(benchmark, print_table):
    table = benchmark(generate_table3_profiled_chips)
    print_table(table)
    baseline = table.rows[0]
    chip_rows = table.rows[1:]
    assert len(chip_rows) == 4
    for row in chip_rows:
        assert 70.0 < row["success_rate_pct"] < baseline["success_rate_pct"]
    # Within each chip, the higher error rate costs success rate and flight energy.
    for chip in {row["chip"] for row in chip_rows}:
        rows = sorted((r for r in chip_rows if r["chip"] == chip), key=lambda r: r["ber_percent"])
        assert rows[0]["success_rate_pct"] > rows[1]["success_rate_pct"]
        assert rows[0]["flight_energy_j"] < rows[1]["flight_energy_j"]
