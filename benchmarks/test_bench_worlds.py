"""Benchmark: batched vs scalar obstacle-field queries, and world generation.

The batched ``(N, 2)`` queries of :class:`~repro.envs.obstacles.ObstacleField`
are the hot path under ray casting and the BFS solvability gate; the scalar
reference here is the pre-vectorization per-point loop, so the two benchmark
groups printed side by side are the speedup.
"""

import numpy as np
import pytest

from repro.envs.obstacles import ObstacleField
from repro.envs.sensors import RaySensor
from repro.worlds import WorldSpec, generate_world


@pytest.fixture(scope="module")
def field() -> ObstacleField:
    return generate_world(WorldSpec("forest", seed=0)).field


@pytest.fixture(scope="module")
def points(field) -> np.ndarray:
    rng = np.random.default_rng(0)
    width, height = field.world_size
    return rng.uniform(0.0, [width, height], size=(512, 2))


def _scalar_clearances(field: ObstacleField, points: np.ndarray) -> np.ndarray:
    """The pre-vectorization reference: one python-level scan per point."""
    out = np.empty(len(points))
    for index, point in enumerate(points):
        x, y = float(point[0]), float(point[1])
        width, height = field.world_size
        wall = min(x, y, width - x, height - y)
        deltas = field.centers - np.array([x, y])
        distances = np.sqrt(np.sum(deltas**2, axis=1)) - field.radii
        out[index] = min(wall, distances.min())
    return out


@pytest.mark.benchmark(group="clearance-512pts")
def test_bench_clearances_scalar_loop(benchmark, field, points):
    result = benchmark(_scalar_clearances, field, points)
    assert result.shape == (512,)


@pytest.mark.benchmark(group="clearance-512pts")
def test_bench_clearances_batched(benchmark, field, points):
    result = benchmark(field.clearances, points)
    assert np.allclose(result, _scalar_clearances(field, points))


def _scalar_sense(sensor: RaySensor, field: ObstacleField, position: np.ndarray) -> np.ndarray:
    """The pre-vectorization RaySensor loop: one ray march per ray."""
    readings = np.empty(sensor.num_rays)
    for index, relative_angle in enumerate(sensor.ray_angles):
        direction = np.array([np.cos(relative_angle), np.sin(relative_angle)])
        distance = sensor.step_m
        while distance < sensor.max_range_m:
            if field.collides(position + distance * direction):
                break
            distance += sensor.step_m
        readings[index] = min(distance, sensor.max_range_m) / sensor.max_range_m
    return readings


@pytest.mark.benchmark(group="ray-sense-12rays")
def test_bench_ray_sense_scalar_loop(benchmark, field):
    sensor = RaySensor(num_rays=12, max_range_m=6.0, step_m=0.1)
    result = benchmark(_scalar_sense, sensor, field, np.array([2.0, 10.0]))
    assert result.shape == (12,)


@pytest.mark.benchmark(group="ray-sense-12rays")
def test_bench_ray_sense_batched(benchmark, field):
    sensor = RaySensor(num_rays=12, max_range_m=6.0, step_m=0.1)
    result = benchmark(sensor.sense, field, np.array([2.0, 10.0]), 0.0)
    assert result.shape == (12,)


@pytest.mark.benchmark(group="world-generation")
@pytest.mark.parametrize("family", ["corridor", "forest", "urban", "rooms", "dynamic"])
def test_bench_generate_world(benchmark, family):
    world = benchmark(generate_world, WorldSpec(family, seed=0))
    assert world.field.num_obstacles > 0
