"""Benchmark: batched vs scalar obstacle-field queries, and world generation.

The batched ``(N, 2)`` queries of :class:`~repro.envs.obstacles.ObstacleField`
are the hot path under ray casting and the BFS solvability gate; the scalar
reference here is the pre-vectorization per-point loop, so the two benchmark
groups printed side by side are the speedup.
"""

import numpy as np
import pytest

from repro.envs.obstacles import ObstacleField
from repro.envs.sensors import RaySensor
from repro.worlds import WorldSpec, generate_world


@pytest.fixture(scope="module")
def field() -> ObstacleField:
    return generate_world(WorldSpec("forest", seed=0)).field


@pytest.fixture(scope="module")
def points(field) -> np.ndarray:
    rng = np.random.default_rng(0)
    width, height = field.world_size
    return rng.uniform(0.0, [width, height], size=(512, 2))


def _scalar_clearances(field: ObstacleField, points: np.ndarray) -> np.ndarray:
    """The pre-vectorization reference: one python-level scan per point."""
    out = np.empty(len(points))
    for index, point in enumerate(points):
        x, y = float(point[0]), float(point[1])
        width, height = field.world_size
        wall = min(x, y, width - x, height - y)
        deltas = field.centers - np.array([x, y])
        distances = np.sqrt(np.sum(deltas**2, axis=1)) - field.radii
        out[index] = min(wall, distances.min())
    return out


@pytest.mark.benchmark(group="clearance-512pts")
def test_bench_clearances_scalar_loop(benchmark, field, points):
    result = benchmark(_scalar_clearances, field, points)
    assert result.shape == (512,)


@pytest.mark.benchmark(group="clearance-512pts")
def test_bench_clearances_batched(benchmark, field, points):
    result = benchmark(field.clearances, points)
    assert np.allclose(result, _scalar_clearances(field, points))


def _scalar_sense(sensor: RaySensor, field: ObstacleField, position: np.ndarray) -> np.ndarray:
    """The pre-vectorization RaySensor loop: one ray march per ray."""
    readings = np.empty(sensor.num_rays)
    for index, relative_angle in enumerate(sensor.ray_angles):
        direction = np.array([np.cos(relative_angle), np.sin(relative_angle)])
        distance = sensor.step_m
        while distance < sensor.max_range_m:
            if field.collides(position + distance * direction):
                break
            distance += sensor.step_m
        readings[index] = min(distance, sensor.max_range_m) / sensor.max_range_m
    return readings


@pytest.mark.benchmark(group="ray-sense-12rays")
def test_bench_ray_sense_scalar_loop(benchmark, field):
    sensor = RaySensor(num_rays=12, max_range_m=6.0, step_m=0.1)
    result = benchmark(_scalar_sense, sensor, field, np.array([2.0, 10.0]))
    assert result.shape == (12,)


@pytest.mark.benchmark(group="ray-sense-12rays")
def test_bench_ray_sense_batched(benchmark, field):
    sensor = RaySensor(num_rays=12, max_range_m=6.0, step_m=0.1)
    result = benchmark(sensor.sense, field, np.array([2.0, 10.0]), 0.0)
    assert result.shape == (12,)


@pytest.mark.benchmark(group="world-generation")
@pytest.mark.parametrize("family", ["corridor", "forest", "urban", "rooms", "dynamic"])
def test_bench_generate_world(benchmark, family):
    world = benchmark(generate_world, WorldSpec(family, seed=0))
    assert world.field.num_obstacles > 0


# ---------------------------------------------------------------------- timed segments
# The ROADMAP flagged ``segment_collides_timed`` as the next hot path: the
# old implementation froze the whole field once per motion sample (a python
# loop rebuilding an (N_static + N_movers) snapshot 8 times per step), which
# scales badly when mover counts grow 10x.  The vectorized broadcast keeps
# one static-mask query plus one movers x samples distance matrix.

NUM_MOVERS_10X = 40  # ~10x the dynamic family's default mover count


@pytest.fixture(scope="module")
def dynamic_field_10x():
    from repro.worlds.dynamic import DynamicObstacleField, MovingObstacle

    rng = np.random.default_rng(0)
    movers = tuple(
        MovingObstacle(
            waypoints=rng.uniform(1.0, 19.0, size=(3, 2)),
            radius=0.4,
            speed_m_s=float(rng.uniform(0.5, 1.5)),
            phase_m=float(rng.uniform(0.0, 8.0)),
        )
        for _ in range(NUM_MOVERS_10X)
    )
    field = DynamicObstacleField(
        world_size=(20.0, 20.0),
        centers=rng.uniform(1.0, 19.0, size=(12, 2)),
        radii=rng.uniform(0.3, 0.8, size=12),
        movers=movers,
    )
    starts = rng.uniform(0.5, 19.5, size=(64, 2))
    ends = starts + rng.uniform(-1.2, 1.2, size=(64, 2))
    t0s = rng.uniform(0.0, 30.0, size=64)
    return field, starts, ends, t0s


def _snapshot_loop_timed(field, starts, ends, t0s, radius=0.25, samples=8):
    """The pre-vectorization reference: freeze a snapshot per motion sample."""
    out = np.zeros(len(starts), dtype=bool)
    fractions = np.linspace(0.0, 1.0, samples)
    for index, (start, end, t0) in enumerate(zip(starts, ends, t0s)):
        for fraction in fractions:
            snapshot = field.at_time(float(t0) + float(fraction) * 0.5)
            if snapshot.collides(start + fraction * (end - start), radius):
                out[index] = True
                break
    return out


@pytest.mark.benchmark(group="timed-segments-40movers")
def test_bench_timed_segments_snapshot_loop(benchmark, dynamic_field_10x):
    field, starts, ends, t0s = dynamic_field_10x
    result = benchmark(_snapshot_loop_timed, field, starts, ends, t0s)
    assert result.shape == (64,)


@pytest.mark.benchmark(group="timed-segments-40movers")
def test_bench_timed_segments_broadcast(benchmark, dynamic_field_10x):
    field, starts, ends, t0s = dynamic_field_10x
    result = benchmark(
        field.segments_collide_timed, starts, ends, t0s, t0s + 0.5, 0.25
    )
    assert np.array_equal(result, _snapshot_loop_timed(field, starts, ends, t0s))
