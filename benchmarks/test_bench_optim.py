"""Micro-benchmark: preallocated in-place optimizer buffers vs naive allocation.

The optimizers in :mod:`repro.nn.optim` preallocate every buffer a step needs
(momentum/moment state, gradient-clip output, arithmetic scratch) so the
steady-state ``step()`` allocates no arrays at all.  This benchmark pins both
halves of that claim against a naive reference Adam that computes the same
update with fresh out-of-place arrays (the pre-backend implementation shape):

* the two implementations agree **bitwise** (the in-place rewrite is a pure
  reorganisation of the same IEEE operation sequence), and
* the in-place step performs no per-step array allocations where the naive
  step allocates several times the parameter memory.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import Adam

#: C3F2-scale parameter shapes (two conv blocks plus the dense head) — the
#: regime the backend refactor targets; at this size the naive step's fresh
#: arrays cost real time where tiny MLP parameters would hide it.
PARAM_SHAPES = ((16, 4, 3, 3), (16,), (32, 16, 3, 3), (32,), (256, 1152), (256,), (5, 256), (5,))

STEPS = 60


class NaiveAdam:
    """Reference Adam allocating fresh arrays per step (pre-backend shape)."""

    def __init__(self, parameters, lr=1e-3, beta1=0.9, beta2=0.999, epsilon=1e-8,
                 grad_clip=None):
        self.parameters = list(parameters)
        self.lr, self.beta1, self.beta2, self.epsilon = lr, beta1, beta2, epsilon
        self.grad_clip = grad_clip
        self._step_count = 0
        self._moment1 = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2 = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for i, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if self.grad_clip is not None:
                grad = np.clip(grad, -self.grad_clip, self.grad_clip)
            self._moment1[i] = self.beta1 * self._moment1[i] + grad * (1.0 - self.beta1)
            self._moment2[i] = self.beta2 * self._moment2[i] + (grad * grad) * (1.0 - self.beta2)
            update = ((self._moment1[i] / correction1) * self.lr) / (
                np.sqrt(self._moment2[i] / correction2) + self.epsilon
            )
            parameter.data = parameter.data - update


def _make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [
        Parameter(rng.normal(size=shape), name=f"p{i}", backend="numpy")
        for i, shape in enumerate(PARAM_SHAPES)
    ], rng


def _grad_stream(rng, steps=STEPS):
    return [[rng.normal(size=shape) for shape in PARAM_SHAPES] for _ in range(steps)]


def _run(optimizer, params, grads):
    for step_grads in grads:
        for param, grad in zip(params, step_grads):
            param.zero_grad()
            param.grad += grad
        optimizer.step()


def test_inplace_adam_matches_naive_reference_bitwise():
    params_a, rng_a = _make_params(1)
    params_b, _ = _make_params(1)
    grads = _grad_stream(rng_a)
    _run(Adam(params_a, lr=1e-3, grad_clip=1.0), params_a, grads)
    _run(NaiveAdam(params_b, lr=1e-3, grad_clip=1.0), params_b, grads)
    for a, b in zip(params_a, params_b):
        assert np.array_equal(a.data, np.asarray(b.data)), a.name


def test_inplace_step_allocates_nothing_in_steady_state():
    params, rng = _make_params(2)
    grads = _grad_stream(rng, steps=20)
    optimizer = Adam(params, lr=1e-3, grad_clip=1.0)
    _run(optimizer, params, grads)  # warm-up: buffers exist, caches primed

    param_bytes = sum(p.data.nbytes for p in params)

    tracemalloc.start()
    _run(optimizer, params, grads)
    _, inplace_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    naive_params, naive_rng = _make_params(2)
    naive = NaiveAdam(naive_params, lr=1e-3, grad_clip=1.0)
    naive_grads = _grad_stream(naive_rng, steps=20)
    _run(naive, naive_params, naive_grads)
    tracemalloc.start()
    _run(naive, naive_params, naive_grads)
    _, naive_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(
        f"\nsteady-state peak allocations over 20 steps: "
        f"in-place {inplace_peak} B vs naive {naive_peak} B "
        f"(parameters occupy {param_bytes} B)"
    )
    # The naive step allocates several fresh parameter-sized arrays; the
    # in-place step must stay below one parameter copy's worth in total.
    assert naive_peak > param_bytes
    assert inplace_peak < param_bytes


@pytest.mark.benchmark(group="optimizer-step")
def test_bench_adam_inplace(benchmark):
    params, rng = _make_params(3)
    grads = _grad_stream(rng)
    optimizer = Adam(params, lr=1e-3, grad_clip=1.0)
    benchmark.pedantic(lambda: _run(optimizer, params, grads), rounds=3, iterations=1)


@pytest.mark.benchmark(group="optimizer-step")
def test_bench_adam_naive_reference(benchmark):
    params, rng = _make_params(3)
    grads = _grad_stream(rng)
    optimizer = NaiveAdam(params, lr=1e-3, grad_clip=1.0)
    benchmark.pedantic(lambda: _run(optimizer, params, grads), rounds=3, iterations=1)


def test_inplace_adam_is_not_slower_than_naive():
    """The allocation-free step should win (or at worst tie) on wall clock."""

    def best_of(optimizer_factory, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            params, rng = _make_params(4)
            grads = _grad_stream(rng)
            optimizer = optimizer_factory(params)
            start = time.perf_counter()
            _run(optimizer, params, grads)
            best = min(best, time.perf_counter() - start)
        return best

    inplace = best_of(lambda p: Adam(p, lr=1e-3, grad_clip=1.0))
    naive = best_of(lambda p: NaiveAdam(p, lr=1e-3, grad_clip=1.0))
    print(f"\n{STEPS} Adam steps: in-place {inplace * 1e3:.2f} ms vs naive {naive * 1e3:.2f} ms "
          f"({naive / inplace:.2f}x)")
    # Measured ~1.2x at these sizes; a small slack absorbs shared-runner noise
    # while still catching a regression back to per-step allocation.
    assert inplace <= naive * 1.05
