"""Benchmark: regenerate Fig. 7 — effectiveness across UAV platforms and policy models."""

import pytest

from repro.experiments.fig7 import (
    generate_fig7_platforms_models,
    generate_fig7_tello_voltage_sweep,
)


def test_bench_fig7_platforms_models(benchmark, print_table):
    table = benchmark(generate_fig7_platforms_models)
    print_table(table)
    rows = {(row["uav"], row["policy"]): row for row in table.rows}
    assert rows[("crazyflie", "C3F2")]["compute_power_pct"] == pytest.approx(6.5, abs=0.7)
    assert rows[("dji-tello", "C3F2")]["compute_power_pct"] == pytest.approx(2.8, abs=0.5)
    # Higher compute-power ratio -> larger mission-level benefit (the figure's takeaway).
    assert (
        rows[("crazyflie", "C3F2")]["flight_energy_reduction_pct"]
        > rows[("dji-tello", "C5F4")]["flight_energy_reduction_pct"]
        > rows[("dji-tello", "C3F2")]["flight_energy_reduction_pct"]
    )


def test_bench_fig7_tello_voltage_sweep(benchmark, print_table):
    table = benchmark(generate_fig7_tello_voltage_sweep)
    print_table(table)
    for row in table.rows:
        assert row["berry_success_pct"] >= row["classical_success_pct"]
